package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"policyoracle"
	"policyoracle/internal/server"
	"policyoracle/internal/store"
)

const updateRuntimeMJ = `
package java.lang;
public class Object { }
public class String { }
public class SecurityManager {
  public void checkRead(String file) { }
  public void checkWrite(String file) { }
}
`

const updateLibV1MJ = `
package api;
import java.lang.*;
public class Store {
  private SecurityManager sm;
  public void put(String key) {
    sm.checkWrite(key);
    write0(key);
  }
  public String get(String key) {
    sm.checkRead(key);
    return read0(key);
  }
  native void write0(String key);
  native String read0(String key);
}
`

// updateLibV2MJ edits put only: get and the runtime are untouched.
const updateLibV2MJ = `
package api;
import java.lang.*;
public class Store {
  private SecurityManager sm;
  public void put(String key) {
    write0(key);
  }
  public String get(String key) {
    sm.checkRead(key);
    return read0(key);
  }
  native void write0(String key);
  native String read0(String key);
}
`

func putJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func doUpdate(t *testing.T, ts *httptest.Server, name string, sources map[string]string) (*http.Response, store.UpdateResult) {
	t.Helper()
	resp, body := putJSON(t, ts.URL+"/v1/libraries/"+name, server.UpdateRequest{Sources: sources})
	var res store.UpdateResult
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("update %s: decoding %q: %v", name, body, err)
		}
	}
	return resp, res
}

// TestServerUpdateE2E drives the delta-aware flow over HTTP: first PUT
// creates and fully extracts, the second re-analyzes only the entries
// reached by the edit, and the served policy bytes stay byte-identical
// to an in-process extraction.
func TestServerUpdateE2E(t *testing.T) {
	ts, _ := startServer(t)
	v1 := map[string]string{"rt.mj": updateRuntimeMJ, "lib.mj": updateLibV1MJ}
	v2 := map[string]string{"rt.mj": updateRuntimeMJ, "lib.mj": updateLibV2MJ}

	resp, res1 := doUpdate(t, ts, "api", v1)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first update: status %d", resp.StatusCode)
	}
	if !res1.Created || res1.Incremental || res1.Entries == 0 || res1.Reanalyzed != res1.Entries {
		t.Errorf("first update: %+v, want full extraction of a new bundle", res1)
	}

	resp, res2 := doUpdate(t, ts, "api", v2)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second update: status %d", resp.StatusCode)
	}
	if !res2.Created || !res2.Incremental {
		t.Errorf("second update: %+v, want incremental extraction", res2)
	}
	if res2.Reused == 0 || res2.Reanalyzed == 0 || res2.Reused+res2.Reanalyzed != res2.Entries {
		t.Errorf("second update stats: %+v", res2)
	}

	// The served blob equals the CLI/in-process wire bytes.
	lib, err := policyoracle.LoadLibrary("api", v2)
	if err != nil {
		t.Fatal(err)
	}
	lib.Extract(policyoracle.DefaultOptions())
	want, err := lib.Policies.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	resp, got := postJSON(t, ts.URL+"/v1/extract", map[string]string{"fingerprint": res2.Fingerprint})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extract: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("incrementally extracted policies differ from in-process ExportJSON (%d vs %d bytes)",
			len(got), len(want))
	}

	// Idempotent re-PUT of existing content: 200, nothing re-analyzed.
	resp, res3 := doUpdate(t, ts, "api", v2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent update: status %d", resp.StatusCode)
	}
	if res3.Created || res3.Fingerprint != res2.Fingerprint || res3.Reused != res3.Entries {
		t.Errorf("idempotent update: %+v", res3)
	}
	if st := stats(t, ts); st.Extractions != 2 {
		t.Errorf("Extractions = %d, want 2 (third PUT reused stored policies)", st.Extractions)
	}
}

func TestServerUpdateErrors(t *testing.T) {
	ts, _ := startServer(t)

	// Undecodable body.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/libraries/api", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d: %s", resp.StatusCode, body)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != server.CodeBadRequest {
		t.Errorf("bad body envelope: %s (err %v)", body, err)
	}

	// Validation failures surface as 400s via store.ErrInvalid.
	for name, req := range map[string]server.UpdateRequest{
		"no sources":  {},
		"bad options": {Sources: map[string]string{"rt.mj": updateRuntimeMJ}, Options: store.OptionsWire{Events: "bogus"}},
		"unloadable":  {Sources: map[string]string{"x.mj": "class { nonsense"}},
	} {
		resp, body := putJSON(t, ts.URL+"/v1/libraries/api", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", name, resp.StatusCode, body)
			continue
		}
		var er server.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Code != server.CodeBadRequest {
			t.Errorf("%s envelope: %s (err %v)", name, body, err)
		}
	}
}
