// Package server is polorad's HTTP API over the content-addressed policy
// store. The wire formats are exactly the CLI's: /v1/extract responds
// with the bytes `polora export` writes and /v1/diff with the JSON
// `polora diff -json` prints, so the CLI, the store, and the service
// speak one representation.
//
// Endpoints:
//
//	POST /v1/libraries         {"name", "sources", "options"?} → {"fingerprint", "created"}
//	PUT  /v1/libraries/{name}  {"sources", "options"?}         → {"fingerprint", "created",
//	                           "incremental", "entries", "reused", "reanalyzed"}
//	POST /v1/extract           {"fingerprint", "domain"?}      → policy wire JSON
//	POST /v1/diff              {"a", "b", "domain"?}           → diff report JSON
//	GET  /v1/drift             drift timeline (?limit=N)      → reconcile.TimelineWire
//	GET  /v1/drift/{pair}      latest pair delta + alert      → reconcile.PairStatus
//	POST /v1/campaign          campaign.ShardRequest          → campaign.StatusResponse (202)
//	GET  /v1/campaign/{id}     shard job status/result        → campaign.StatusResponse
//	POST /v1/batch             batch.Request (≤ MaxBatchItems) → NDJSON stream of
//	                           batch.ItemResult, input order, flushed per item
//	GET  /v1/blob/{fp}         local-only policy blob         → policy wire JSON
//	GET  /healthz                                       → "ok"
//	GET  /statsz                                        → store counters
//	GET  /metricsz                                      → Prometheus text exposition
//	GET  /debug/pprof/*                                 → runtime profiles (opt-in)
//
// Errors are a versioned envelope {"code", "message", "detail"} whose
// code field is stable across releases (see the Code* constants);
// clients should dispatch on it, never on message text.
//
// Handlers run under the request context: a client that disconnects
// stops its extraction (unless another request shares it), and server
// drain cancels in-flight work.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"policyoracle/internal/oracle"
	"policyoracle/internal/reconcile"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/store"
	"policyoracle/internal/telemetry"
)

// MaxRequestBytes bounds an upload body. The bundled corpora are tens of
// kilobytes; 32 MiB leaves room for paper-scale generated libraries.
const MaxRequestBytes = 32 << 20

// Stable machine-readable error codes carried in ErrorResponse.Code.
const (
	// CodeBadRequest: the request body failed to decode or validate.
	CodeBadRequest = "bad_request"
	// CodePayloadTooLarge: the body exceeded MaxRequestBytes.
	CodePayloadTooLarge = "payload_too_large"
	// CodeUnknownLibrary: no bundle with the given fingerprint.
	CodeUnknownLibrary = "unknown_library"
	// CodeExtractFailed: extraction or persistence failed server-side.
	CodeExtractFailed = "extract_failed"
	// CodeShuttingDown: the request was cancelled by client disconnect or
	// server drain before it completed.
	CodeShuttingDown = "shutting_down"
	// CodeWatchDisabled: /v1/drift was queried but the server is not
	// running the reconcile controller (polorad started without -watch).
	CodeWatchDisabled = "watch_disabled"
	// CodeUnknownPair: the drift timeline has never observed this library
	// pair.
	CodeUnknownPair = "unknown_pair"
	// CodeUnknownDomain: the request named a check domain that is not
	// registered, or one this server does not serve (polorad -domains).
	CodeUnknownDomain = "unknown_domain"
	// CodeCampaignsDisabled: /v1/campaign was called but the server does
	// not execute campaign shards (polorad started without -campaigns).
	CodeCampaignsDisabled = "campaigns_disabled"
	// CodeUnknownCampaign: no campaign job with the given ID (never
	// created, or evicted after completion).
	CodeUnknownCampaign = "unknown_campaign"
	// CodeBatchTooLarge: a /v1/batch request carried more items than the
	// per-request cap (MaxBatchItems). The whole request is rejected
	// before any item runs; split it into smaller batches.
	CodeBatchTooLarge = "batch_too_large"
)

// ErrorResponse is the error envelope every non-2xx API response carries.
type ErrorResponse struct {
	// Code is a stable machine-readable identifier (Code* constants).
	Code string `json:"code"`
	// Message is a short human-readable description of the code.
	Message string `json:"message"`
	// Detail is the specific failure, not guaranteed stable.
	Detail string `json:"detail,omitempty"`
}

var codeMessages = map[string]string{
	CodeBadRequest:        "the request could not be decoded or validated",
	CodePayloadTooLarge:   "the request body exceeds the size limit",
	CodeUnknownLibrary:    "no library bundle with this fingerprint",
	CodeExtractFailed:     "policy extraction failed",
	CodeShuttingDown:      "the request was cancelled before completion",
	CodeWatchDisabled:     "the reconcile controller is not running (start polorad with -watch)",
	CodeUnknownPair:       "no drift observations for this library pair",
	CodeUnknownDomain:     "no check domain with this ID is served here",
	CodeCampaignsDisabled: "campaign execution is not enabled (start polorad with -campaigns)",
	CodeUnknownCampaign:   "no campaign job with this ID",
	CodeBatchTooLarge:     "the batch carries more items than the per-request cap",
}

// DriftProvider is the reconcile-controller surface the drift endpoints
// serve from; *reconcile.Controller implements it. An interface so tests
// can stub it and so the server compiles the watch feature out to a 501
// when polorad runs without -watch.
type DriftProvider interface {
	// Enqueue marks a library as needing reconciliation (called after
	// every successful PUT).
	Enqueue(name string)
	// Timeline snapshots the newest limit entries (all when limit <= 0).
	Timeline(limit int) reconcile.TimelineWire
	// Pairs lists the latest status of every observed pair.
	Pairs() []*reconcile.PairStatus
	// Pair returns one pair's latest status including the reconciled diff
	// report; reconcile.ErrUnknownPair when never observed.
	Pair(ctx context.Context, key string) (*reconcile.PairStatus, error)
}

// Options configures the optional subsystems of a Server.
type Options struct {
	// Registry is the metrics registry /metricsz exposes. Nil allocates a
	// private one, so the scrape endpoint always works; pass the registry
	// shared with the store to see its series too.
	Registry *telemetry.Registry
	// Logger receives one structured line per completed request. Nil
	// discards them.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiles expose internals and cost CPU, so enabling is a deliberate
	// operator action (polorad -pprof).
	Pprof bool
	// Drift connects the reconcile controller: PUTs enqueue
	// reconciliation and /v1/drift serves its timeline. Nil (no -watch)
	// answers drift queries with 501 watch_disabled.
	Drift DriftProvider
	// Domains restricts the check domains this server accepts (polorad
	// -domains): uploads and domain assertions naming a domain outside
	// the list fail with the stable unknown_domain code. Empty serves
	// every registered domain. IDs are as registered; an empty string in
	// the list means the default domain.
	Domains []string
	// Campaigns enables /v1/campaign shard execution (polorad
	// -campaigns). Off by default: a campaign shard is minutes of CPU
	// driven by an unauthenticated request body, so serving one is a
	// deliberate operator action. Disabled servers answer with 501
	// campaigns_disabled.
	Campaigns bool
	// BatchWorkers bounds how many /v1/batch items one request executes
	// concurrently (<= 0 means DefaultBatchWorkers). The store's own
	// MaxInflight still bounds extractions globally; this keeps a single
	// batch from monopolizing that budget.
	BatchWorkers int
}

// Server serves the policy-oracle API over one Store.
type Server struct {
	st           *store.Store
	mux          *http.ServeMux
	hm           *telemetry.HTTPMetrics
	bm           *telemetry.BatchMetrics
	log          *slog.Logger
	drift        DriftProvider
	domains      map[string]bool // nil = every registered domain
	campaigns    *campaignRunner // nil = campaigns disabled
	batchWorkers int
}

// New returns a Server over st.
func New(st *store.Store, opts Options) *Server {
	if opts.Registry == nil {
		opts.Registry = telemetry.New()
	}
	if opts.Logger == nil {
		opts.Logger = telemetry.NopLogger()
	}
	if opts.BatchWorkers <= 0 {
		opts.BatchWorkers = DefaultBatchWorkers
	}
	s := &Server{
		st:           st,
		mux:          http.NewServeMux(),
		hm:           telemetry.NewHTTPMetrics(opts.Registry),
		bm:           telemetry.NewBatchMetrics(opts.Registry),
		log:          opts.Logger,
		drift:        opts.Drift,
		batchWorkers: opts.BatchWorkers,
	}
	if opts.Campaigns {
		s.campaigns = newCampaignRunner(opts.Logger, opts.Registry)
	}
	if len(opts.Domains) > 0 {
		s.domains = make(map[string]bool, len(opts.Domains))
		for _, id := range opts.Domains {
			if id == "" {
				id = secmodel.DefaultDomainID
			}
			s.domains[id] = true
		}
	}
	s.handle("POST /v1/libraries", s.handleLibraries)
	s.handle("PUT /v1/libraries/{name}", s.handleUpdate)
	s.handle("POST /v1/extract", s.handleExtract)
	s.handle("POST /v1/diff", s.handleDiff)
	s.handle("GET /v1/drift", s.handleDrift)
	s.handle("GET /v1/drift/{pair}", s.handleDriftPair)
	s.handle("POST /v1/campaign", s.handleCampaignPost)
	s.handle("GET /v1/campaign/{id}", s.handleCampaignGet)
	s.handle("POST /v1/batch", s.handleBatch)
	s.handle("GET /v1/blob/{fp}", s.handleBlob)
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /statsz", s.handleStatsz)
	s.handle("GET /metricsz", opts.Registry.Handler().ServeHTTP)
	if opts.Pprof {
		// Mounted explicitly rather than via the package's DefaultServeMux
		// side effects, so profiles exist only when asked for.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// handle registers h under pattern, wrapped with the request middleware.
// The route label comes from the registration pattern, not the URL, so
// label cardinality is fixed no matter what clients request.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	_, route, ok := strings.Cut(pattern, " ")
	if !ok {
		route = pattern
	}
	s.mux.Handle(pattern, s.instrument(route, h))
}

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.hm.Inflight.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.hm.Inflight.Dec()
		elapsed := time.Since(start)
		s.hm.Requests.With(r.Method, route, strconv.Itoa(sw.status)).Inc()
		s.hm.Duration.With(route).ObserveDuration(elapsed)
		s.log.Info("request",
			"method", r.Method, "route", route, "status", sw.status,
			"duration", elapsed, "bytes", sw.bytes, "remote", r.RemoteAddr)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// UploadRequest is the body of POST /v1/libraries.
type UploadRequest struct {
	Name    string            `json:"name"`
	Sources map[string]string `json:"sources"`
	Options store.OptionsWire `json:"options"`
}

// UploadResponse is the body of a successful upload.
type UploadResponse struct {
	Fingerprint string `json:"fingerprint"`
	Created     bool   `json:"created"`
}

// UpdateRequest is the body of PUT /v1/libraries/{name}: a new source
// revision of the named library. The response is store.UpdateResult; the
// fingerprint it returns serves /v1/extract and /v1/diff as usual, with
// unaffected entry policies spliced from the library's previous revision
// rather than re-analyzed.
type UpdateRequest struct {
	Sources map[string]string `json:"sources"`
	Options store.OptionsWire `json:"options"`
}

// DiffRequest is the body of POST /v1/diff.
type DiffRequest struct {
	A string `json:"a"`
	B string `json:"b"`
	// Domain, when set, asserts the check domain of both compared policy
	// sets: an unregistered or disallowed ID fails with unknown_domain
	// and a report of a different domain with bad_request. Empty asserts
	// nothing (assert the default domain with its registered ID).
	Domain string `json:"domain,omitempty"`
}

type extractRequest struct {
	Fingerprint string `json:"fingerprint"`
	// Domain, when set, asserts the check domain of the served policy
	// blob, with the same semantics as DiffRequest.Domain.
	Domain string `json:"domain,omitempty"`
}

func (s *Server) handleLibraries(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	if !s.decode(w, r, &req) {
		return
	}
	if _, err := s.resolveDomain(req.Options.Domain); err != nil {
		s.fail(w, http.StatusBadRequest, CodeUnknownDomain, err)
		return
	}
	fp, created, err := s.st.Put(req.Name, req.Sources, req.Options)
	if err != nil {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	s.writeJSON(w, status, UploadResponse{Fingerprint: fp, Created: created})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if _, err := s.resolveDomain(req.Options.Domain); err != nil {
		s.fail(w, http.StatusBadRequest, CodeUnknownDomain, err)
		return
	}
	res, err := s.st.Update(r.Context(), r.PathValue("name"), req.Sources, req.Options)
	if err != nil {
		s.failStore(w, err)
		return
	}
	if s.drift != nil {
		// The controller coalesces per name, so enqueueing every revision
		// (even no-op re-uploads: Created false still moves the index) is
		// cheap and keeps the drift timeline level with the store.
		s.drift.Enqueue(r.PathValue("name"))
	}
	status := http.StatusOK
	if res.Created {
		status = http.StatusCreated
	}
	s.writeJSON(w, status, res)
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	var req extractRequest
	if !s.decode(w, r, &req) {
		return
	}
	want, err := s.assertDomain(w, req.Domain)
	if err != nil {
		return
	}
	blob, err := s.st.PoliciesContext(r.Context(), req.Fingerprint)
	if err != nil {
		s.failStore(w, err)
		return
	}
	if want != nil {
		// The blob's domain header is its first field; decode just that
		// rather than re-importing the whole policy set.
		var hdr struct {
			Domain string `json:"domain"`
		}
		if json.Unmarshal(blob, &hdr) == nil && !domainMatches(want, hdr.Domain) {
			s.fail(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("policies of %s are in domain %q, not the asserted %q",
					req.Fingerprint, domainLabel(hdr.Domain), want.ID()))
			return
		}
	}
	// Raw persisted bytes: byte-identical to `polora export` output.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	var req DiffRequest
	if !s.decode(w, r, &req) {
		return
	}
	want, err := s.assertDomain(w, req.Domain)
	if err != nil {
		return
	}
	rep, err := s.st.DiffContext(r.Context(), req.A, req.B)
	if err != nil {
		s.failStore(w, err)
		return
	}
	if want != nil && !domainMatches(want, rep.Domain) {
		s.fail(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("compared policies are in domain %q, not the asserted %q",
				domainLabel(rep.Domain), want.ID()))
		return
	}
	// The canonical wire bytes: identical to `polora diff -json` output
	// and to the report the drift timeline records a digest of.
	wire, err := rep.EncodeJSON()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, CodeExtractFailed, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(wire)
}

// handleDrift serves the drift timeline: the newest ?limit=N entries
// (all by default), exactly the wire `polora drift -json` prints.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if s.drift == nil {
		s.fail(w, http.StatusNotImplemented, CodeWatchDisabled,
			errors.New("drift timeline requires -watch"))
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("limit %q is not a non-negative integer", v))
			return
		}
		limit = n
	}
	s.writeJSON(w, http.StatusOK, s.drift.Timeline(limit))
}

// handleDriftPair serves one pair's latest observation, including the
// full reconciled diff report and the current alert state.
func (s *Server) handleDriftPair(w http.ResponseWriter, r *http.Request) {
	if s.drift == nil {
		s.fail(w, http.StatusNotImplemented, CodeWatchDisabled,
			errors.New("drift timeline requires -watch"))
		return
	}
	key := r.PathValue("pair")
	if _, _, ok := reconcile.SplitPair(key); !ok {
		s.fail(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("pair %q is not of the form a~b", key))
		return
	}
	st, err := s.drift.Pair(r.Context(), key)
	if err != nil {
		if errors.Is(err, reconcile.ErrUnknownPair) {
			s.fail(w, http.StatusNotFound, CodeUnknownPair, err)
			return
		}
		s.failStore(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.st.Stats())
}

// decode reads a bounded JSON body, rejecting unknown fields so typos in
// requests fail loudly instead of extracting under default options.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		status, code := http.StatusBadRequest, CodeBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status, code = http.StatusRequestEntityTooLarge, CodePayloadTooLarge
		}
		s.fail(w, status, code, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// resolveDomain validates a domain ID against the registry and the
// server's allowlist. Empty means the default domain (always allowed by
// an empty allowlist, like every other registered domain).
func (s *Server) resolveDomain(id string) (*secmodel.Domain, error) {
	d, err := secmodel.ResolveDomain(id)
	if err != nil {
		return nil, err
	}
	if s.domains != nil && !s.domains[d.ID()] {
		return nil, fmt.Errorf("%w: %q is not served here (polorad -domains)",
			secmodel.ErrUnknownDomain, d.ID())
	}
	return d, nil
}

// assertDomain resolves a request's optional domain assertion. An empty
// field asserts nothing and returns (nil, nil); an invalid one writes
// the unknown_domain error and returns it so the handler stops.
func (s *Server) assertDomain(w http.ResponseWriter, id string) (*secmodel.Domain, error) {
	if id == "" {
		return nil, nil
	}
	d, err := s.resolveDomain(id)
	if err != nil {
		s.fail(w, http.StatusBadRequest, CodeUnknownDomain, err)
		return nil, err
	}
	return d, nil
}

// domainMatches reports whether a wire-format domain ID (empty = the
// default domain) names the asserted domain.
func domainMatches(want *secmodel.Domain, wireID string) bool {
	return domainLabel(wireID) == want.ID()
}

// domainLabel spells the wire format's empty default-domain ID as the
// registered one for error messages and comparisons.
func domainLabel(id string) string {
	if id == "" {
		return secmodel.DefaultDomainID
	}
	return id
}

// storeErrorCode maps a store-layer error to its HTTP status and stable
// error code. Shared by the single-item handlers (via failStore) and the
// per-item envelopes of /v1/batch, so an item fails with exactly the
// code its standalone request would have.
func storeErrorCode(err error) (status int, code string) {
	switch {
	case errors.Is(err, store.ErrNotFound):
		return http.StatusNotFound, CodeUnknownLibrary
	case errors.Is(err, secmodel.ErrUnknownDomain):
		return http.StatusBadRequest, CodeUnknownDomain
	case errors.Is(err, oracle.ErrDomainMismatch):
		return http.StatusBadRequest, CodeBadRequest
	case errors.Is(err, store.ErrMalformed), errors.Is(err, store.ErrInvalid):
		return http.StatusBadRequest, CodeBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, CodeShuttingDown
	default:
		return http.StatusInternalServerError, CodeExtractFailed
	}
}

func (s *Server) failStore(w http.ResponseWriter, err error) {
	status, code := storeErrorCode(err)
	s.fail(w, status, code, err)
}

func (s *Server) fail(w http.ResponseWriter, status int, code string, err error) {
	s.writeJSON(w, status, ErrorResponse{
		Code:    code,
		Message: codeMessages[code],
		Detail:  err.Error(),
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
