// Package server is polorad's HTTP API over the content-addressed policy
// store. The wire formats are exactly the CLI's: /v1/extract responds
// with the bytes `polora export` writes and /v1/diff with the JSON
// `polora diff -json` prints, so the CLI, the store, and the service
// speak one representation.
//
// Endpoints:
//
//	POST /v1/libraries  {"name", "sources", "options"?} → {"fingerprint", "created"}
//	POST /v1/extract    {"fingerprint"}                 → policy wire JSON
//	POST /v1/diff       {"a", "b"}                      → diff report JSON
//	GET  /healthz                                       → "ok"
//	GET  /statsz                                        → store counters
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"policyoracle/internal/store"
)

// MaxRequestBytes bounds an upload body. The bundled corpora are tens of
// kilobytes; 32 MiB leaves room for paper-scale generated libraries.
const MaxRequestBytes = 32 << 20

// Server serves the policy-oracle API over one Store.
type Server struct {
	st  *store.Store
	mux *http.ServeMux
}

// New returns a Server over st.
func New(st *store.Store) *Server {
	s := &Server{st: st, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/libraries", s.handleLibraries)
	s.mux.HandleFunc("POST /v1/extract", s.handleExtract)
	s.mux.HandleFunc("POST /v1/diff", s.handleDiff)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// UploadRequest is the body of POST /v1/libraries.
type UploadRequest struct {
	Name    string            `json:"name"`
	Sources map[string]string `json:"sources"`
	Options store.OptionsWire `json:"options"`
}

// UploadResponse is the body of a successful upload.
type UploadResponse struct {
	Fingerprint string `json:"fingerprint"`
	Created     bool   `json:"created"`
}

// DiffRequest is the body of POST /v1/diff.
type DiffRequest struct {
	A string `json:"a"`
	B string `json:"b"`
}

type extractRequest struct {
	Fingerprint string `json:"fingerprint"`
}

func (s *Server) handleLibraries(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	if !s.decode(w, r, &req) {
		return
	}
	fp, created, err := s.st.Put(req.Name, req.Sources, req.Options)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	s.writeJSON(w, status, UploadResponse{Fingerprint: fp, Created: created})
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	var req extractRequest
	if !s.decode(w, r, &req) {
		return
	}
	blob, err := s.st.Policies(req.Fingerprint)
	if err != nil {
		s.failStore(w, err)
		return
	}
	// Raw persisted bytes: byte-identical to `polora export` output.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	var req DiffRequest
	if !s.decode(w, r, &req) {
		return
	}
	rep, err := s.st.Diff(req.A, req.B)
	if err != nil {
		s.failStore(w, err)
		return
	}
	// Encoded exactly as `polora diff -json` prints the report.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep.ToJSON())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.st.Stats())
}

// decode reads a bounded JSON body, rejecting unknown fields so typos in
// requests fail loudly instead of extracting under default options.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		s.fail(w, status, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func (s *Server) failStore(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, store.ErrNotFound):
		s.fail(w, http.StatusNotFound, err)
	case errors.Is(err, store.ErrMalformed):
		s.fail(w, http.StatusBadRequest, err)
	default:
		s.fail(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
