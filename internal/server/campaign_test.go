package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"policyoracle"
	"policyoracle/internal/campaign"
	"policyoracle/internal/server"
	"policyoracle/internal/store"
	"policyoracle/internal/telemetry"
)

// startCampaignServer boots the worker configuration: polorad with
// -campaigns enabled.
func startCampaignServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir, MaxInflight: 2, Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(st, server.Options{Campaigns: true}))
	t.Cleanup(ts.Close)
	return ts, dir
}

func shardRequest(shard int) campaign.ShardRequest {
	return campaign.ShardRequest{
		Name:    "jdk",
		Sources: policyoracle.BuiltinCorpus("jdk"),
		Seed:    7, Rounds: 4, Mutations: 3, ShardRounds: 4,
		Shard: shard,
	}
}

func pollCampaign(t *testing.T, ts *httptest.Server, id string) campaign.StatusResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/campaign/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st campaign.StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Status != campaign.StatusRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still running after 60s", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCampaignEndpointLifecycle covers the worker happy path: POST
// accepts a shard with 202/running, the poll converges to done with a
// shard result, and the result is persisted under campaigns/.
func TestCampaignEndpointLifecycle(t *testing.T) {
	ts, dir := startCampaignServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/campaign", shardRequest(0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", resp.StatusCode, body)
	}
	var st campaign.StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Status != campaign.StatusRunning {
		t.Fatalf("POST response %s", body)
	}
	final := pollCampaign(t, ts, st.ID)
	if final.Status != campaign.StatusDone || final.Result == nil {
		t.Fatalf("final status %q error %q", final.Status, final.Error)
	}
	if final.Result.Shard != 0 || final.Result.Rounds != 4 || len(final.Result.Keys) == 0 {
		t.Fatalf("shard result %+v", final.Result)
	}
	saved, err := os.ReadFile(filepath.Join(dir, "campaigns", st.ID+".json"))
	if err != nil {
		t.Fatalf("persisted shard result: %v", err)
	}
	var persisted campaign.ShardResult
	if err := json.Unmarshal(saved, &persisted); err != nil {
		t.Fatal(err)
	}
	if persisted.Shard != 0 || persisted.Rounds != final.Result.Rounds {
		t.Fatalf("persisted result diverges: %s", saved)
	}
}

// TestCampaignEndpointGate pins the 501 campaigns_disabled behavior of
// a polorad without -campaigns — the default.
func TestCampaignEndpointGate(t *testing.T) {
	ts, _ := startServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/campaign", shardRequest(0))
	if er := decodeError(t, body); resp.StatusCode != http.StatusNotImplemented || er.Code != server.CodeCampaignsDisabled {
		t.Errorf("POST: status %d code %q, want 501 %q", resp.StatusCode, er.Code, server.CodeCampaignsDisabled)
	}
	resp, err := http.Get(ts.URL + "/v1/campaign/c1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("GET: status %d, want 501", resp.StatusCode)
	}
}

// TestCampaignEndpointValidation covers the stable 4xx codes: unknown
// job, empty request, unknown domain, out-of-range shard.
func TestCampaignEndpointValidation(t *testing.T) {
	ts, _ := startCampaignServer(t)

	resp, err := http.Get(ts.URL + "/v1/campaign/nope")
	if err != nil {
		t.Fatal(err)
	}
	var er server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || er.Code != server.CodeUnknownCampaign {
		t.Errorf("unknown job: status %d code %q, want 404 %q", resp.StatusCode, er.Code, server.CodeUnknownCampaign)
	}

	resp, body := postJSON(t, ts.URL+"/v1/campaign", campaign.ShardRequest{})
	if er := decodeError(t, body); resp.StatusCode != http.StatusBadRequest || er.Code != server.CodeBadRequest {
		t.Errorf("empty request: status %d code %q", resp.StatusCode, er.Code)
	}

	req := shardRequest(0)
	req.Domain = "no-such-domain"
	resp, body = postJSON(t, ts.URL+"/v1/campaign", req)
	if er := decodeError(t, body); resp.StatusCode != http.StatusBadRequest || er.Code != server.CodeUnknownDomain {
		t.Errorf("bad domain: status %d code %q", resp.StatusCode, er.Code)
	}

	resp, body = postJSON(t, ts.URL+"/v1/campaign", shardRequest(99))
	if er := decodeError(t, body); resp.StatusCode != http.StatusBadRequest || er.Code != server.CodeBadRequest {
		t.Errorf("shard out of range: status %d code %q: %s", resp.StatusCode, er.Code, body)
	}
}
