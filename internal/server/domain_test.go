package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/server"
	"policyoracle/internal/store"
)

// cryptoServerLibMJ is a minimal crypto-domain API for service tests.
const cryptoServerLibMJ = `
package capi;
import java.lang.*;
import java.security.*;
public class Cipher {
  private CryptoGuard guard;
  public void encrypt(String iv) {
    guard.checkIvFresh(iv);
    encrypt0(iv);
  }
  native void encrypt0(String iv);
}
`

func cryptoServerSources() map[string]string {
	srcs := corpus.CryptoRuntimeSources()
	srcs["capi/cipher.mj"] = cryptoServerLibMJ
	return srcs
}

// decodeError unmarshals the stable error envelope of a non-2xx response.
func decodeError(t *testing.T, body []byte) server.ErrorResponse {
	t.Helper()
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body is not the envelope: %v: %s", err, body)
	}
	return er
}

// TestServerUnknownDomain pins the stable unknown_domain error code on
// every endpoint that accepts a domain: upload options, the /v1/extract
// assertion, and the /v1/diff assertion.
func TestServerUnknownDomain(t *testing.T) {
	ts, _ := startServer(t)

	resp, body := postJSON(t, ts.URL+"/v1/libraries", server.UploadRequest{
		Name:    "lib",
		Sources: cryptoServerSources(),
		Options: store.OptionsWire{Domain: "no-such-domain"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("upload: status %d, want 400: %s", resp.StatusCode, body)
	}
	if er := decodeError(t, body); er.Code != server.CodeUnknownDomain {
		t.Errorf("upload error code = %q, want %q", er.Code, server.CodeUnknownDomain)
	}

	resp, body = postJSON(t, ts.URL+"/v1/extract", map[string]string{
		"fingerprint": "pol1-deadbeef", "domain": "no-such-domain",
	})
	if er := decodeError(t, body); resp.StatusCode != http.StatusBadRequest || er.Code != server.CodeUnknownDomain {
		t.Errorf("extract: status %d code %q, want 400 %q", resp.StatusCode, er.Code, server.CodeUnknownDomain)
	}

	resp, body = postJSON(t, ts.URL+"/v1/diff", server.DiffRequest{
		A: "pol1-deadbeef", B: "pol1-deadbeef", Domain: "no-such-domain",
	})
	if er := decodeError(t, body); resp.StatusCode != http.StatusBadRequest || er.Code != server.CodeUnknownDomain {
		t.Errorf("diff: status %d code %q, want 400 %q", resp.StatusCode, er.Code, server.CodeUnknownDomain)
	}
}

// TestServerDomainAssertions uploads the same sources under the default
// and crypto domains and exercises the request-level domain assertions:
// a matching assertion passes, a mismatched one fails with bad_request,
// and a crypto diff round-trips its domain in the report.
func TestServerDomainAssertions(t *testing.T) {
	ts, _ := startServer(t)
	srcs := cryptoServerSources()

	put := func(name string, w store.OptionsWire) string {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/libraries", server.UploadRequest{
			Name: name, Sources: srcs, Options: w,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d: %s", name, resp.StatusCode, body)
		}
		var ur server.UploadResponse
		if err := json.Unmarshal(body, &ur); err != nil {
			t.Fatal(err)
		}
		return ur.Fingerprint
	}
	fpDef := put("a", store.OptionsWire{})
	fpCryptoA := put("b", store.OptionsWire{Domain: secmodel.CryptoDomainID})
	fpCryptoB := put("c", store.OptionsWire{Domain: secmodel.CryptoDomainID})
	if fpDef == fpCryptoA {
		t.Fatal("default and crypto uploads share a fingerprint")
	}

	// Matching assertion serves the blob.
	resp, body := postJSON(t, ts.URL+"/v1/extract", map[string]string{
		"fingerprint": fpCryptoA, "domain": secmodel.CryptoDomainID,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("asserted extract: status %d: %s", resp.StatusCode, body)
	}
	var hdr struct {
		Domain string `json:"domain"`
	}
	if err := json.Unmarshal(body, &hdr); err != nil || hdr.Domain != secmodel.CryptoDomainID {
		t.Errorf("served blob domain = %q (err %v), want %q", hdr.Domain, err, secmodel.CryptoDomainID)
	}

	// Mismatched assertion on a default-domain blob.
	resp, body = postJSON(t, ts.URL+"/v1/extract", map[string]string{
		"fingerprint": fpDef, "domain": secmodel.CryptoDomainID,
	})
	if er := decodeError(t, body); resp.StatusCode != http.StatusBadRequest || er.Code != server.CodeBadRequest {
		t.Errorf("mismatched extract: status %d code %q, want 400 %q", resp.StatusCode, er.Code, server.CodeBadRequest)
	}

	// Crypto diff with a matching assertion carries its domain.
	resp, body = postJSON(t, ts.URL+"/v1/diff", server.DiffRequest{
		A: fpCryptoA, B: fpCryptoB, Domain: secmodel.CryptoDomainID,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("crypto diff: status %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Domain string `json:"domain"`
	}
	if err := json.Unmarshal(body, &rep); err != nil || rep.Domain != secmodel.CryptoDomainID {
		t.Errorf("diff report domain = %q (err %v), want %q", rep.Domain, err, secmodel.CryptoDomainID)
	}

	// Cross-domain diff fails loudly even without an assertion.
	resp, body = postJSON(t, ts.URL+"/v1/diff", server.DiffRequest{A: fpDef, B: fpCryptoA})
	if er := decodeError(t, body); resp.StatusCode != http.StatusBadRequest || er.Code != server.CodeBadRequest {
		t.Errorf("cross-domain diff: status %d code %q, want 400 %q", resp.StatusCode, er.Code, server.CodeBadRequest)
	}
}

// TestServerDomainAllowlist starts the server with an explicit domain
// allowlist (the polorad -domains flag) and checks requests outside it
// fail with unknown_domain while allowed ones succeed — including the
// empty spelling of the default domain when the default is allowed.
func TestServerDomainAllowlist(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(st, server.Options{
		Domains: []string{secmodel.DefaultDomainID},
	}))
	defer ts.Close()

	srcs := cryptoServerSources()
	resp, body := postJSON(t, ts.URL+"/v1/libraries", server.UploadRequest{
		Name: "lib", Sources: srcs,
		Options: store.OptionsWire{Domain: secmodel.CryptoDomainID},
	})
	if er := decodeError(t, body); resp.StatusCode != http.StatusBadRequest || er.Code != server.CodeUnknownDomain {
		t.Errorf("disallowed domain: status %d code %q, want 400 %q", resp.StatusCode, er.Code, server.CodeUnknownDomain)
	}

	resp, body = postJSON(t, ts.URL+"/v1/libraries", server.UploadRequest{
		Name: "lib", Sources: srcs,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("default-domain upload under allowlist: status %d: %s", resp.StatusCode, body)
	}
}
