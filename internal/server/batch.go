package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"policyoracle/internal/batch"
	"policyoracle/internal/store"
)

// MaxBatchItems is the per-request item cap of POST /v1/batch. Requests
// over the cap fail whole with 413 batch_too_large before any item runs.
const MaxBatchItems = batch.DefaultMaxItems

// DefaultBatchWorkers is the per-request execution concurrency of
// /v1/batch when Options.BatchWorkers is unset.
const DefaultBatchWorkers = 4

// handleBlob serves one fingerprint's policy blob from this replica
// only: cache, disk, or extraction from a locally held bundle — never a
// peer fetch. It is the supplier side of the peer tier; the local-only
// read is what makes peer fetching loop-free even when two replicas'
// ring views disagree.
func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	blob, err := s.st.PoliciesContext(store.LocalOnly(r.Context()), r.PathValue("fp"))
	if err != nil {
		s.failStore(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
}

// handleBatch executes a mixed array of extract/diff items under a
// bounded worker pool, streaming one NDJSON batch.ItemResult line per
// item in input order, flushed as each becomes available. Item failures
// travel in per-item envelopes with the same stable codes as the
// single-item endpoints; the stream itself stays 200.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batch.Request
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Items) > MaxBatchItems {
		s.fail(w, http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
			fmt.Errorf("%d items exceed the per-request cap of %d", len(req.Items), MaxBatchItems))
		return
	}
	s.bm.Requests.Inc()

	// Workers execute out of order; the writer drains slots in input
	// order so the stream is deterministic. Each slot is buffered so a
	// worker never blocks on the writer.
	slots := make([]chan batch.ItemResult, len(req.Items))
	for i := range slots {
		slots[i] = make(chan batch.ItemResult, 1)
	}
	jobs := make(chan int)
	workers := s.batchWorkers
	if workers > len(req.Items) {
		workers = len(req.Items)
	}
	ctx := r.Context()
	for range workers {
		go func() {
			for i := range jobs {
				slots[i] <- s.runBatchItem(ctx, i, req.Items[i])
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range req.Items {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range slots {
		select {
		case res := <-slots[i]:
			if err := enc.Encode(res); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-ctx.Done():
			// Client gone or server draining: the stream is already
			// committed, so just stop emitting.
			return
		}
	}
}

// runBatchItem executes one batch item, reproducing the corresponding
// single-item handler's bytes and error mapping exactly.
func (s *Server) runBatchItem(ctx context.Context, index int, it batch.Item) batch.ItemResult {
	start := time.Now()
	res := s.execBatchItem(ctx, index, it)
	op := it.Op
	if op != batch.OpExtract && op != batch.OpDiff {
		op = "invalid"
	}
	outcome := "ok"
	if res.Error != nil {
		outcome = "error"
	}
	s.bm.Items.With(op, outcome).Inc()
	s.bm.ItemDuration.With(op).ObserveDuration(time.Since(start))
	return res
}

func (s *Server) execBatchItem(ctx context.Context, index int, it batch.Item) batch.ItemResult {
	if err := it.Validate(); err != nil {
		return batchError(index, it, http.StatusBadRequest, CodeBadRequest, err)
	}
	var want *domainAssertion
	if it.Domain != "" {
		d, err := s.resolveDomain(it.Domain)
		if err != nil {
			return batchError(index, it, http.StatusBadRequest, CodeUnknownDomain, err)
		}
		want = &domainAssertion{d.ID()}
	}
	switch it.Op {
	case batch.OpExtract:
		blob, err := s.st.PoliciesContext(ctx, it.Fingerprint)
		if err != nil {
			status, code := storeErrorCode(err)
			return batchError(index, it, status, code, err)
		}
		if want != nil {
			var hdr struct {
				Domain string `json:"domain"`
			}
			if json.Unmarshal(blob, &hdr) == nil && domainLabel(hdr.Domain) != want.id {
				return batchError(index, it, http.StatusBadRequest, CodeBadRequest,
					fmt.Errorf("policies of %s are in domain %q, not the asserted %q",
						it.Fingerprint, domainLabel(hdr.Domain), want.id))
			}
		}
		return batch.ItemResult{Index: index, Op: it.Op, Status: http.StatusOK, Result: blob}
	case batch.OpDiff:
		rep, err := s.st.DiffContext(ctx, it.A, it.B)
		if err != nil {
			status, code := storeErrorCode(err)
			return batchError(index, it, status, code, err)
		}
		if want != nil && domainLabel(rep.Domain) != want.id {
			return batchError(index, it, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("compared policies are in domain %q, not the asserted %q",
					domainLabel(rep.Domain), want.id))
		}
		wire, err := rep.EncodeJSON()
		if err != nil {
			return batchError(index, it, http.StatusInternalServerError, CodeExtractFailed, err)
		}
		return batch.ItemResult{Index: index, Op: it.Op, Status: http.StatusOK, Result: wire}
	}
	// Unreachable: Validate rejected unknown ops.
	return batchError(index, it, http.StatusBadRequest, CodeBadRequest, errors.New("unknown op"))
}

// domainAssertion carries a resolved domain ID for per-item checks.
type domainAssertion struct{ id string }

func batchError(index int, it batch.Item, status int, code string, err error) batch.ItemResult {
	return batch.ItemResult{
		Index:  index,
		Op:     it.Op,
		Status: status,
		Error:  &batch.ItemError{Code: code, Message: codeMessages[code], Detail: err.Error()},
	}
}
