package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"

	"policyoracle/internal/campaign"
	"policyoracle/internal/oracle"
	"policyoracle/internal/telemetry"
)

// Campaign endpoints turn a polorad process into one worker of a
// distributed coverage-guided campaign (see internal/campaign):
//
//	POST /v1/campaign      campaign.ShardRequest → 202 campaign.StatusResponse (running)
//	GET  /v1/campaign/{id}                       → campaign.StatusResponse
//
// A job runs one shard asynchronously; because shards are
// self-contained deterministic units, the worker needs no coordination
// beyond the request itself. Engines (validated options + extracted
// baseline) are cached across requests keyed by the campaign's
// deterministic identity, so a client fanning N shards at one worker
// pays for one baseline extraction, not N. Completed shard results are
// persisted to the store's campaigns/ directory.

// maxCampaignJobs bounds the in-memory job table; the oldest finished
// jobs are evicted first. A client that polls promptly (RunRemote
// polls every 200ms) never observes an eviction.
const maxCampaignJobs = 256

// maxCampaignEngines bounds cached baselines.
const maxCampaignEngines = 4

type campaignJob struct {
	mu     sync.Mutex
	id     string
	status string
	result *campaign.ShardResult
	err    string
}

func (j *campaignJob) response() campaign.StatusResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return campaign.StatusResponse{ID: j.id, Status: j.status, Result: j.result, Error: j.err}
}

// campaignRunner owns the job table and the engine cache.
type campaignRunner struct {
	log     *slog.Logger
	metrics *telemetry.CampaignMetrics

	mu       sync.Mutex
	nextID   int
	jobs     map[string]*campaignJob
	jobOrder []string
	engines  map[string]*campaign.Engine
	engOrder []string
}

func newCampaignRunner(log *slog.Logger, reg *telemetry.Registry) *campaignRunner {
	return &campaignRunner{
		log:     log,
		metrics: telemetry.NewCampaignMetrics(reg),
		jobs:    map[string]*campaignJob{},
		engines: map[string]*campaign.Engine{},
	}
}

// engine returns a cached engine for the request's deterministic
// identity, building (and caching) one when absent.
func (c *campaignRunner) engine(req *campaign.ShardRequest, opts campaign.Options) (*campaign.Engine, error) {
	oopts := oracle.DefaultOptions()
	if opts.Oracle != nil {
		oopts = *opts.Oracle
	}
	key := fmt.Sprintf("%s|%d|%d|%d|%d|%v",
		oracle.Fingerprint(req.Name, req.Sources, oopts),
		req.Seed, req.Rounds, req.Mutations, req.ShardRounds, req.Uniform)
	c.mu.Lock()
	if e := c.engines[key]; e != nil {
		c.mu.Unlock()
		return e, nil
	}
	c.mu.Unlock()
	// Build outside the lock: baseline extraction is the expensive part
	// and concurrent first-shards for distinct campaigns shouldn't
	// serialize. Two racing builds of the same key cost one redundant
	// extraction, nothing more.
	e, err := campaign.NewEngine(req.Name, req.Sources, opts)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cached := c.engines[key]; cached != nil {
		return cached, nil
	}
	c.engines[key] = e
	c.engOrder = append(c.engOrder, key)
	if len(c.engOrder) > maxCampaignEngines {
		delete(c.engines, c.engOrder[0])
		c.engOrder = c.engOrder[1:]
	}
	return e, nil
}

// add registers a new running job, evicting the oldest finished job
// when the table is full.
func (c *campaignRunner) add() *campaignJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	j := &campaignJob{id: "c" + strconv.Itoa(c.nextID), status: campaign.StatusRunning}
	if len(c.jobOrder) >= maxCampaignJobs {
		for i, id := range c.jobOrder {
			old := c.jobs[id]
			old.mu.Lock()
			finished := old.status != campaign.StatusRunning
			old.mu.Unlock()
			if finished {
				delete(c.jobs, id)
				c.jobOrder = append(c.jobOrder[:i], c.jobOrder[i+1:]...)
				break
			}
		}
	}
	c.jobs[j.id] = j
	c.jobOrder = append(c.jobOrder, j.id)
	return j
}

func (c *campaignRunner) get(id string) *campaignJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

// handleCampaignPost accepts one shard job, synchronously validating
// the bundle and options (a bad campaign fails the POST, not the poll)
// and running the rounds asynchronously.
func (s *Server) handleCampaignPost(w http.ResponseWriter, r *http.Request) {
	if s.campaigns == nil {
		s.fail(w, http.StatusNotImplemented, CodeCampaignsDisabled,
			errors.New("campaign execution requires -campaigns"))
		return
	}
	var req campaign.ShardRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Name == "" || len(req.Sources) == 0 {
		s.fail(w, http.StatusBadRequest, CodeBadRequest,
			errors.New("campaign request needs a name and sources"))
		return
	}
	d, err := s.resolveDomain(req.Domain)
	if err != nil {
		s.fail(w, http.StatusBadRequest, CodeUnknownDomain, err)
		return
	}
	oopts := oracle.DefaultOptions()
	oopts.Domain = d
	opts := campaign.Options{
		Seed:        req.Seed,
		Rounds:      req.Rounds,
		Mutations:   req.Mutations,
		ShardRounds: req.ShardRounds,
		Uniform:     req.Uniform,
		Oracle:      &oopts,
		Metrics:     s.campaigns.metrics,
	}
	e, err := s.campaigns.engine(&req, opts)
	if err != nil {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if req.Shard < 0 || req.Shard >= e.Shards() {
		s.fail(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("shard %d out of range [0,%d)", req.Shard, e.Shards()))
		return
	}
	j := s.campaigns.add()
	go s.runCampaignJob(j, e, req.Shard)
	s.writeJSON(w, http.StatusAccepted, j.response())
}

func (s *Server) runCampaignJob(j *campaignJob, e *campaign.Engine, shard int) {
	res, err := e.RunShard(shard)
	j.mu.Lock()
	if err != nil {
		j.status = campaign.StatusFailed
		j.err = err.Error()
	} else {
		j.status = campaign.StatusDone
		j.result = res
	}
	j.mu.Unlock()
	if err != nil {
		s.log.Error("campaign shard failed", "job", j.id, "shard", shard, "err", err)
		return
	}
	buf, merr := json.Marshal(res)
	if merr == nil {
		_, merr = s.st.SaveCampaign(j.id, append(buf, '\n'))
	}
	if merr != nil {
		// Persistence is best-effort bookkeeping; the client gets the
		// result from the poll either way.
		s.log.Error("campaign shard persist failed", "job", j.id, "err", merr)
	}
	s.log.Info("campaign shard done", "job", j.id, "shard", shard,
		"rounds", res.Rounds, "keys", len(res.Keys), "crashers", len(res.Crashers))
}

// handleCampaignGet serves one job's status.
func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	if s.campaigns == nil {
		s.fail(w, http.StatusNotImplemented, CodeCampaignsDisabled,
			errors.New("campaign execution requires -campaigns"))
		return
	}
	id := r.PathValue("id")
	j := s.campaigns.get(id)
	if j == nil {
		s.fail(w, http.StatusNotFound, CodeUnknownCampaign,
			fmt.Errorf("no campaign job %q", id))
		return
	}
	s.writeJSON(w, http.StatusOK, j.response())
}
