package server_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"policyoracle/internal/reconcile"
	"policyoracle/internal/server"
	"policyoracle/internal/store"
	"policyoracle/internal/telemetry"
)

// startWatchServer wires store + reconcile controller + server exactly
// as `polorad -watch` does, with the controller loop running.
func startWatchServer(t *testing.T) (*httptest.Server, *reconcile.Controller) {
	t.Helper()
	dir := t.TempDir()
	reg := telemetry.New()
	st, err := store.Open(store.Config{Dir: dir, MaxInflight: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	c, err := reconcile.New(reconcile.Config{
		Store: st, Path: filepath.Join(dir, "drift.json"),
		Interval: time.Hour, AlertThreshold: 1, Verify: true, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); c.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	ts := httptest.NewServer(server.New(st, server.Options{Registry: reg, Drift: c}))
	t.Cleanup(ts.Close)
	return ts, c
}

func getJSON(t *testing.T, url string, dst any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if dst != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(body, dst); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return resp
}

func waitForEntries(t *testing.T, c *reconcile.Controller, n int) reconcile.TimelineWire {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		wire := c.Timeline(0)
		if len(wire.Entries) >= n {
			return wire
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeline stuck at %d entries, want %d", len(wire.Entries), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// PUTs drive the watch loop end to end: uploading two revisions yields a
// drift observation whose report is byte-identical to POST /v1/diff for
// the same fingerprints, served by GET /v1/drift/{pair}.
func TestServerDriftE2E(t *testing.T) {
	ts, c := startWatchServer(t)

	v1 := map[string]string{"rt.mj": updateRuntimeMJ, "lib.mj": updateLibV1MJ}
	v2 := map[string]string{"rt.mj": updateRuntimeMJ, "lib.mj": updateLibV2MJ}
	resp, refRes := doUpdate(t, ts, "ref", v1)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT ref: %d", resp.StatusCode)
	}
	resp, implRes := doUpdate(t, ts, "impl", v2)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT impl: %d", resp.StatusCode)
	}
	waitForEntries(t, c, 1)

	var wire reconcile.TimelineWire
	if resp := getJSON(t, ts.URL+"/v1/drift", &wire); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/drift: %d", resp.StatusCode)
	}
	if wire.Version != reconcile.TimelineVersion || len(wire.Entries) != 1 {
		t.Fatalf("timeline wire: %+v", wire)
	}
	e := wire.Entries[0]
	pair := reconcile.PairKey("ref", "impl")
	if e.Pair != pair || e.Deviations == 0 || e.Alert != "fired" {
		t.Errorf("entry: %+v", e)
	}

	var st reconcile.PairStatus
	if resp := getJSON(t, ts.URL+"/v1/drift/"+pair, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/drift/%s: %d", pair, resp.StatusCode)
	}
	if !st.AlertFiring || st.Deviations != e.Deviations || len(st.Report) == 0 {
		t.Errorf("pair status: %+v", st)
	}

	// Byte-identity across surfaces: the drift report equals POST /v1/diff
	// for the same fingerprints, and both match the recorded digest.
	// (Canonical pair order may have swapped a and b relative to upload
	// order, so diff the fingerprints as the timeline recorded them.)
	fps := map[string]string{"ref": refRes.Fingerprint, "impl": implRes.Fingerprint}
	if e.FpA != fps[e.LibA] || e.FpB != fps[e.LibB] {
		t.Errorf("timeline fingerprints %s/%s do not match uploads %v", e.FpA, e.FpB, fps)
	}
	resp, diffBody := postJSON(t, ts.URL+"/v1/diff", server.DiffRequest{A: e.FpA, B: e.FpB})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/diff: %d: %s", resp.StatusCode, diffBody)
	}
	// POST /v1/diff serves the exact canonical bytes the controller
	// hashed into the timeline, so the digest ties the two surfaces
	// together byte-for-byte.
	sum := sha256.Sum256(diffBody)
	if hex.EncodeToString(sum[:]) != e.DiffSHA256 {
		t.Error("POST /v1/diff bytes do not match timeline provenance digest")
	}
	// The report embedded in the pair status envelope is re-indented by
	// the envelope encoder, so compare it structurally.
	var a, b bytes.Buffer
	if err := json.Compact(&a, diffBody); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&b, st.Report); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("drift report does not match POST /v1/diff")
	}

	// Fix the deviation: the alert clears on the next observation. (The
	// impl@v1 bundle is new content — name is part of the address — so
	// this PUT also creates.)
	if resp, _ := doUpdate(t, ts, "impl", v1); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT impl v1: %d", resp.StatusCode)
	}
	wire = waitForEntries(t, c, 2)
	if last := wire.Entries[len(wire.Entries)-1]; last.Alert != "cleared" || last.Deviations != 0 {
		t.Errorf("post-fix entry: %+v", last)
	}

	// ?limit trims to the newest entries.
	var limited reconcile.TimelineWire
	getJSON(t, ts.URL+"/v1/drift?limit=1", &limited)
	if len(limited.Entries) != 1 || limited.Entries[0].Seq != 2 {
		t.Errorf("limited timeline: %+v", limited.Entries)
	}
}

// Drift endpoints answer with the stable watch_disabled code when the
// controller is not wired in, and with typed errors for bad queries.
func TestServerDriftErrors(t *testing.T) {
	// No -watch: 501 watch_disabled.
	ts, _ := startServer(t)
	for _, path := range []string{"/v1/drift", "/v1/drift/a~b"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var er server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented || er.Code != server.CodeWatchDisabled {
			t.Errorf("GET %s without watch: %d %q", path, resp.StatusCode, er.Code)
		}
	}

	// With watch: malformed pair keys and unknown pairs are typed.
	wts, _ := startWatchServer(t)
	resp := getJSON(t, wts.URL+"/v1/drift/not-a-pair", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed pair: %d", resp.StatusCode)
	}
	resp, err := http.Get(wts.URL + "/v1/drift/a~b")
	if err != nil {
		t.Fatal(err)
	}
	var er server.ErrorResponse
	json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || er.Code != server.CodeUnknownPair {
		t.Errorf("unknown pair: %d %q", resp.StatusCode, er.Code)
	}
	resp = getJSON(t, wts.URL+"/v1/drift?limit=-1", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative limit: %d", resp.StatusCode)
	}
}

// Concurrent PUTs of one name serialize server-side: every request
// succeeds, and once the storm settles a final PUT deterministically
// owns the latest-fingerprint index (last writer wins).
func TestServerConcurrentUpdatesSameName(t *testing.T) {
	ts, st := startServer(t)

	const writers = 4
	type result struct {
		status int
		res    store.UpdateResult
	}
	results := make([]result, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := map[string]string{
				"rt.mj":  updateRuntimeMJ,
				"lib.mj": fmt.Sprintf("// rev %d\n%s", i, updateLibV1MJ),
			}
			resp, res := doUpdate(t, ts, "api", src)
			results[i] = result{resp.StatusCode, res}
		}(i)
	}
	wg.Wait()

	latest := st.Names()["api"]
	found := false
	for i, r := range results {
		if r.status != http.StatusCreated {
			t.Errorf("writer %d: status %d", i, r.status)
		}
		if r.res.Fingerprint == latest {
			found = true
		}
	}
	if !found {
		t.Errorf("index fingerprint %q is not any writer's", latest)
	}

	// Last writer wins: a sequential PUT after the storm owns the index,
	// and its policies serve /v1/extract.
	resp, res := doUpdate(t, ts, "api",
		map[string]string{"rt.mj": updateRuntimeMJ, "lib.mj": updateLibV2MJ})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("final PUT: %d", resp.StatusCode)
	}
	if got := st.Names()["api"]; got != res.Fingerprint {
		t.Errorf("index = %q, want last writer %q", got, res.Fingerprint)
	}
	eResp, blob := postJSON(t, ts.URL+"/v1/extract", map[string]string{"fingerprint": res.Fingerprint})
	if eResp.StatusCode != http.StatusOK || len(blob) == 0 {
		t.Errorf("extract of last writer: %d (%d bytes)", eResp.StatusCode, len(blob))
	}
}
