package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"policyoracle"
	"policyoracle/internal/server"
	"policyoracle/internal/store"
	"policyoracle/internal/telemetry"
)

// startServer serves a fresh store with one registry shared between the
// store and the server, the same wiring cmd/polorad uses.
func startServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	reg := telemetry.New()
	st, err := store.Open(store.Config{Dir: t.TempDir(), MaxInflight: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(st, server.Options{Registry: reg}))
	t.Cleanup(ts.Close)
	return ts, st
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func upload(t *testing.T, ts *httptest.Server, name string) string {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/libraries", server.UploadRequest{
		Name:    name,
		Sources: policyoracle.BuiltinCorpus(name),
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s: status %d: %s", name, resp.StatusCode, body)
	}
	var ur server.UploadResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if !ur.Created {
		t.Errorf("upload %s: created=false on first upload", name)
	}
	return ur.Fingerprint
}

func stats(t *testing.T, ts *httptest.Server) store.Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st store.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServerE2E drives the full service path on a loopback listener with
// the bundled corpora and asserts the acceptance criteria: the served
// policy and diff JSON are byte-identical to the in-process
// export/diff path, concurrent diffs are served correctly, and a warm
// cache performs zero extractions.
func TestServerE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ts, _ := startServer(t)

	fpJDK := upload(t, ts, "jdk")
	fpHarmony := upload(t, ts, "harmony")

	// The service's address matches the client-side fingerprint.
	opts := policyoracle.DefaultOptions()
	if want := policyoracle.Fingerprint("jdk", policyoracle.BuiltinCorpus("jdk"), opts); fpJDK != want {
		t.Errorf("server fingerprint %s, client computes %s", fpJDK, want)
	}

	// In-process reference: the CLI `export` / `diff -json` path.
	libs := map[string]*policyoracle.Library{}
	for _, name := range []string{"jdk", "harmony"} {
		lib, err := policyoracle.LoadLibrary(name, policyoracle.BuiltinCorpus(name))
		if err != nil {
			t.Fatal(err)
		}
		lib.Extract(opts)
		libs[name] = lib
	}
	wantPolicies, err := libs["jdk"].Policies.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var wantDiff bytes.Buffer
	enc := json.NewEncoder(&wantDiff)
	enc.SetIndent("", "  ")
	wantRep, err := policyoracle.Diff(libs["jdk"], libs["harmony"])
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(wantRep.ToJSON()); err != nil {
		t.Fatal(err)
	}

	// /v1/extract returns the exact bytes `polora export` writes.
	resp, gotPolicies := postJSON(t, ts.URL+"/v1/extract", map[string]string{"fingerprint": fpJDK})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extract: status %d: %s", resp.StatusCode, gotPolicies)
	}
	if !bytes.Equal(gotPolicies, wantPolicies) {
		t.Errorf("served policies differ from in-process ExportJSON (%d vs %d bytes)",
			len(gotPolicies), len(wantPolicies))
	}

	// /v1/diff returns the exact bytes `polora diff -json` prints.
	resp, gotDiff := postJSON(t, ts.URL+"/v1/diff", server.DiffRequest{A: fpJDK, B: fpHarmony})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff: status %d: %s", resp.StatusCode, gotDiff)
	}
	if !bytes.Equal(gotDiff, wantDiff.Bytes()) {
		t.Errorf("served diff differs from in-process report JSON:\n%s\nvs\n%s",
			gotDiff, wantDiff.Bytes())
	}
	if !bytes.Contains(gotDiff, []byte("checkAccept")) {
		t.Errorf("diff report misses the Figure 1 difference:\n%s", gotDiff)
	}

	// Exactly the two uploads were extracted (the diff reused the
	// extract's cached jdk blob).
	st := stats(t, ts)
	if st.Extractions != 2 {
		t.Errorf("Extractions = %d, want 2", st.Extractions)
	}

	// Warm cache: concurrent diffs perform zero further extractions and
	// every response is byte-identical.
	const n = 8
	results := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := json.Marshal(server.DiffRequest{A: fpJDK, B: fpHarmony})
			if err != nil {
				return
			}
			resp, err := http.Post(ts.URL+"/v1/diff", "application/json", bytes.NewReader(data))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				results[i], _ = io.ReadAll(resp.Body)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if !bytes.Equal(results[i], wantDiff.Bytes()) {
			t.Errorf("concurrent diff %d differs (%d bytes)", i, len(results[i]))
		}
	}
	warm := stats(t, ts)
	if warm.Extractions != 2 {
		t.Errorf("warm-cache diffs extracted: Extractions = %d, want 2", warm.Extractions)
	}
	if warm.Diffs != uint64(1+n) {
		t.Errorf("Diffs = %d, want %d", warm.Diffs, 1+n)
	}

	// Re-upload is acknowledged as existing content.
	resp, body := postJSON(t, ts.URL+"/v1/libraries", server.UploadRequest{
		Name: "jdk", Sources: policyoracle.BuiltinCorpus("jdk"),
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("re-upload: status %d: %s", resp.StatusCode, body)
	}
	var ur server.UploadResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Created || ur.Fingerprint != fpJDK {
		t.Errorf("re-upload: %+v, want existing %s", ur, fpJDK)
	}
}

// TestServerColdRestart proves the store is the durable representation:
// a second server over the same directory serves the identical diff with
// zero extractions.
func TestServerColdRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(st, server.Options{}))
	fpA := upload(t, ts, "jdk")
	fpB := upload(t, ts, "harmony")
	_, firstDiff := postJSON(t, ts.URL+"/v1/diff", server.DiffRequest{A: fpA, B: fpB})
	ts.Close()

	st2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(server.New(st2, server.Options{}))
	defer ts2.Close()
	resp, secondDiff := postJSON(t, ts2.URL+"/v1/diff", server.DiffRequest{A: fpA, B: fpB})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff after restart: status %d: %s", resp.StatusCode, secondDiff)
	}
	if !bytes.Equal(firstDiff, secondDiff) {
		t.Error("diff differs across server restarts")
	}
	warm := stats(t, ts2)
	if warm.Extractions != 0 || warm.DiskHits != 2 {
		t.Errorf("restart served from disk: %+v", warm)
	}
}

// TestServerErrors asserts every failure path returns the versioned
// error envelope with its stable machine-readable code.
func TestServerErrors(t *testing.T) {
	ts, _ := startServer(t)
	cases := []struct {
		name   string
		path   string
		body   string
		status int
		code   string
	}{
		{"bad JSON", "/v1/extract", `{`, http.StatusBadRequest, server.CodeBadRequest},
		{"unknown field", "/v1/diff", `{"a":"x","b":"y","frob":1}`, http.StatusBadRequest, server.CodeBadRequest},
		{"malformed fingerprint", "/v1/extract", `{"fingerprint":"nope"}`, http.StatusBadRequest, server.CodeBadRequest},
		{"unknown fingerprint", "/v1/extract",
			fmt.Sprintf(`{"fingerprint":%q}`,
				policyoracle.Fingerprint("ghost", map[string]string{"f": "x"}, policyoracle.DefaultOptions())),
			http.StatusNotFound, server.CodeUnknownLibrary},
		{"unknown diff side", "/v1/diff",
			fmt.Sprintf(`{"a":%q,"b":%q}`,
				policyoracle.Fingerprint("ghost", map[string]string{"f": "x"}, policyoracle.DefaultOptions()),
				policyoracle.Fingerprint("ghost2", map[string]string{"f": "y"}, policyoracle.DefaultOptions())),
			http.StatusNotFound, server.CodeUnknownLibrary},
		{"empty upload", "/v1/libraries", `{"name":"x","sources":{}}`, http.StatusBadRequest, server.CodeBadRequest},
		{"broken bundle", "/v1/libraries", `{"name":"x","sources":{"a.mj":"class {"}}`, http.StatusBadRequest, server.CodeBadRequest},
		{"bad options", "/v1/libraries", `{"name":"x","sources":{"a.mj":"package p; public class C {}"},"options":{"events":"bogus"}}`, http.StatusBadRequest, server.CodeBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var envelope server.ErrorResponse
		if err := json.Unmarshal(body, &envelope); err != nil {
			t.Errorf("%s: not an error envelope: %s", tc.name, body)
			continue
		}
		if envelope.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, envelope.Code, tc.code)
		}
		if envelope.Message == "" || envelope.Detail == "" {
			t.Errorf("%s: incomplete envelope: %+v", tc.name, envelope)
		}
	}

	// Method not allowed on API routes.
	resp, err := http.Get(ts.URL + "/v1/diff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/diff: status %d, want 405", resp.StatusCode)
	}
}

// TestBodyLimitsEveryEndpoint sweeps every body-reading endpoint with an
// oversized request: each must cap the read at MaxRequestBytes and
// answer the stable payload_too_large envelope — the code clients
// dispatch "shrink the bundle" on, distinct from "fix the request". The
// sweep (rather than a single spot check) is what keeps a future
// endpoint from shipping with an unbounded io.ReadAll.
func TestBodyLimitsEveryEndpoint(t *testing.T) {
	reg := telemetry.New()
	st, err := store.Open(store.Config{Dir: t.TempDir(), MaxInflight: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Campaigns on, so POST /v1/campaign reaches its body read instead of
	// failing early with campaigns_disabled.
	ts := httptest.NewServer(server.New(st, server.Options{Registry: reg, Campaigns: true}))
	t.Cleanup(ts.Close)

	huge := fmt.Sprintf(`{"name":"x","sources":{"a.mj":%q}}`, strings.Repeat("x", server.MaxRequestBytes+1))
	endpoints := []struct {
		method, path string
	}{
		{http.MethodPost, "/v1/libraries"},
		{http.MethodPut, "/v1/libraries/x"},
		{http.MethodPost, "/v1/extract"},
		{http.MethodPost, "/v1/diff"},
		{http.MethodPost, "/v1/campaign"},
		{http.MethodPost, "/v1/batch"},
	}
	for _, ep := range endpoints {
		req, err := http.NewRequest(ep.method, ts.URL+ep.path, strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var envelope server.ErrorResponse
		if err := json.Unmarshal(body, &envelope); err != nil {
			t.Errorf("%s %s: oversized body did not yield an error envelope: %.200s", ep.method, ep.path, body)
			continue
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge || envelope.Code != server.CodePayloadTooLarge {
			t.Errorf("%s %s: status %d code %q, want 413 %q",
				ep.method, ep.path, resp.StatusCode, envelope.Code, server.CodePayloadTooLarge)
		}
	}
}

// Tiny two-version API for the metrics round trip: v2 drops the write
// check. Small enough that extraction is instant, so this test runs in
// short mode too.
const metricsRuntimeMJ = `
package java.lang;
public class Object { }
public class String { }
public class SecurityManager {
  public void checkWrite(String file) { }
}
`

const metricsLibV1MJ = `
package api;
import java.lang.*;
public class Kv {
  private SecurityManager sm;
  public void put(String key) {
    sm.checkWrite(key);
    write0(key);
  }
  native void write0(String key);
}
`

const metricsLibV2MJ = `
package api;
import java.lang.*;
public class Kv {
  public void put(String key) {
    write0(key);
  }
  native void write0(String key);
}
`

// TestMetricsEndpoint drives an upload→extract→diff round trip and
// asserts /metricsz serves Prometheus text exposition whose request,
// cache-miss, and per-phase extraction series reflect it.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := startServer(t)
	var fps [2]string
	for i, src := range []string{metricsLibV1MJ, metricsLibV2MJ} {
		resp, body := postJSON(t, ts.URL+"/v1/libraries", server.UploadRequest{
			Name:    fmt.Sprintf("kv-v%d", i+1),
			Sources: map[string]string{"rt.mj": metricsRuntimeMJ, "kv.mj": src},
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload v%d: status %d: %s", i+1, resp.StatusCode, body)
		}
		var ur server.UploadResponse
		if err := json.Unmarshal(body, &ur); err != nil {
			t.Fatal(err)
		}
		fps[i] = ur.Fingerprint
	}
	if resp, body := postJSON(t, ts.URL+"/v1/extract", map[string]string{"fingerprint": fps[0]}); resp.StatusCode != http.StatusOK {
		t.Fatalf("extract: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/diff", server.DiffRequest{A: fps[0], B: fps[1]}); resp.StatusCode != http.StatusOK {
		t.Fatalf("diff: status %d: %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metricsz Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	text := string(body)
	for _, want := range []string{
		// Request counters from the middleware.
		`polorad_http_requests_total{method="POST",route="/v1/libraries",code="201"} 2`,
		`polorad_http_requests_total{method="POST",route="/v1/extract",code="200"} 1`,
		`polorad_http_requests_total{method="POST",route="/v1/diff",code="200"} 1`,
		`polorad_http_request_duration_seconds_count{route="/v1/diff"} 1`,
		// Store series: both sides were cold, the diff reused the
		// extract's cached blob.
		"polorad_store_cache_misses_total 2",
		"polorad_store_extractions_total 2",
		"polorad_store_diffs_total 1",
		`polorad_store_cache_hits_total{tier="mem"} 1`,
		// Phase timers from inside the extractor, attributed to the
		// check domain the extraction ran under.
		`policyoracle_extract_mode_duration_seconds_count{mode="may",domain="securitymanager"} 2`,
		`policyoracle_extract_mode_duration_seconds_count{mode="must",domain="securitymanager"} 2`,
		`policyoracle_analysis_entry_points_total{mode="may",domain="securitymanager"}`,
		`policyoracle_extractions_total{domain="securitymanager"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metricsz misses %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full scrape:\n%s", text)
	}
}

// Profiling endpoints exist only when explicitly enabled.
func TestPprofOptIn(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	off := httptest.NewServer(server.New(st, server.Options{}))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(server.New(st, server.Options{Pprof: true}))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := startServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
}
