package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"policyoracle"
	"policyoracle/internal/batch"
	"policyoracle/internal/ring"
	"policyoracle/internal/server"
	"policyoracle/internal/store"
	"policyoracle/internal/telemetry"
)

// tier is an in-process multi-replica polorad deployment: n servers
// over n independent store directories, joined by peer backends on one
// consistent-hash ring.
type tier struct {
	servers []*httptest.Server
	stores  []*store.Store
	urls    []string
}

// startTier boots n replicas. Member identity is each replica's base
// URL, installed after every listener is bound — the same late binding
// polorad does between flag parsing and serving.
func startTier(t *testing.T, n int) *tier {
	t.Helper()
	tr := &tier{}
	var backends []*store.PeerBackend
	for i := 0; i < n; i++ {
		reg := telemetry.New()
		pb := store.NewPeerBackend(store.PeerConfig{Registry: reg})
		st, err := store.Open(store.Config{
			Dir: t.TempDir(), MaxInflight: 4,
			Backends: []store.Backend{pb}, Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(st, server.Options{Registry: reg}))
		t.Cleanup(ts.Close)
		tr.servers = append(tr.servers, ts)
		tr.stores = append(tr.stores, st)
		tr.urls = append(tr.urls, ts.URL)
		backends = append(backends, pb)
	}
	for i, pb := range backends {
		pb.SetMembers(tr.urls, tr.urls[i])
	}
	return tr
}

// referenceWire computes the single-node reference bytes: the exact
// output of `polora export` for each library and `polora diff -json`
// for the pair.
func referenceWire(t *testing.T) (wantJDK, wantHarmony, wantDiff []byte) {
	t.Helper()
	opts := policyoracle.DefaultOptions()
	libs := map[string]*policyoracle.Library{}
	for _, name := range []string{"jdk", "harmony"} {
		lib, err := policyoracle.LoadLibrary(name, policyoracle.BuiltinCorpus(name))
		if err != nil {
			t.Fatal(err)
		}
		lib.Extract(opts)
		libs[name] = lib
	}
	var err error
	if wantJDK, err = libs["jdk"].Policies.ExportJSON(); err != nil {
		t.Fatal(err)
	}
	if wantHarmony, err = libs["harmony"].Policies.ExportJSON(); err != nil {
		t.Fatal(err)
	}
	rep, err := policyoracle.Diff(libs["jdk"], libs["harmony"])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep.ToJSON()); err != nil {
		t.Fatal(err)
	}
	return wantJDK, wantHarmony, buf.Bytes()
}

// TestDistributedBatchByteIdentity is the tentpole acceptance test: a
// 3-replica tier takes uploads through replica 0 only, serves a batch
// through replica 1 (which holds nothing locally and must peer-fetch),
// routes a ring-aware client batch across all members, and survives the
// dropout of a non-uploading replica — with every payload byte-identical
// to the single-node `polora export` / `polora diff -json` wire.
func TestDistributedBatchByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tr := startTier(t, 3)
	fpJDK := upload(t, tr.servers[0], "jdk")
	fpHarmony := upload(t, tr.servers[0], "harmony")
	wantJDK, wantHarmony, wantDiff := referenceWire(t)

	items := []batch.Item{
		{Op: batch.OpExtract, Fingerprint: fpJDK},
		{Op: batch.OpDiff, A: fpJDK, B: fpHarmony},
		{Op: batch.OpExtract, Fingerprint: fpHarmony},
		{Op: batch.OpExtract, Fingerprint: policyoracle.Fingerprint(
			"ghost", map[string]string{"f": "x"}, policyoracle.DefaultOptions())},
	}
	wantPayload := [][]byte{wantJDK, wantDiff, wantHarmony, nil}

	// Direct batch through replica 1: every blob must arrive over the
	// peer tier, streamed as NDJSON in input order.
	body, _ := json.Marshal(batch.Request{Items: items})
	resp, err := http.Post(tr.urls[1]+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("batch Content-Type %q, want application/x-ndjson", ct)
	}
	dec := json.NewDecoder(resp.Body)
	for i := range items {
		var res batch.ItemResult
		if err := dec.Decode(&res); err != nil {
			t.Fatalf("batch stream ended after %d of %d items: %v", i, len(items), err)
		}
		if res.Index != i {
			t.Fatalf("batch stream out of input order: got index %d at position %d", res.Index, i)
		}
		if wantPayload[i] == nil {
			if res.Error == nil || res.Error.Code != server.CodeUnknownLibrary || res.Status != http.StatusNotFound {
				t.Errorf("item %d: want a 404 unknown_library envelope, got %+v", i, res)
			}
			continue
		}
		if res.Error != nil {
			t.Errorf("item %d failed: %+v", i, res.Error)
			continue
		}
		if !bytes.Equal(res.Result, wantPayload[i]) {
			t.Errorf("item %d: served bytes differ from the single-node wire (%d vs %d bytes)",
				i, len(res.Result), len(wantPayload[i]))
		}
	}
	if st := tr.stores[1].Stats(); st.BackendHits == 0 {
		t.Error("replica 1 served the batch without a single peer fetch")
	}
	// The peer series surfaces on replica 1's scrape endpoint.
	mresp, err := http.Get(tr.urls[1] + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(scrape, []byte(`polora_peer_fetch_total{outcome="hit"}`)) {
		t.Error("replica 1 scrape misses polora_peer_fetch_total hits")
	}
	if !bytes.Contains(scrape, []byte("polora_batch_requests_total")) {
		t.Error("replica 1 scrape misses polora_batch_requests_total")
	}

	// Ring-aware client across the full member set: merged results in
	// input order, same bytes.
	client := &batch.Client{Members: tr.urls, Retries: 1, Backoff: 20 * time.Millisecond}
	results, err := client.Run(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	checkBatchResults(t, "full tier", results, wantPayload)

	// Dropout: close a replica that items route to. Replica 0 is the
	// only one holding the bundles, so the victim is a ring owner other
	// than it (falling back to replica 1, which by now holds peer-fetched
	// blobs). The client must retry, drop the member, reroute, and still
	// produce identical bytes.
	r := ring.New(tr.urls, 0)
	victim := ""
	for _, it := range items[:3] {
		if owner := r.Owner(it.RouteKey()); owner != tr.urls[0] {
			victim = owner
			break
		}
	}
	if victim == "" {
		victim = tr.urls[1]
	}
	for i, u := range tr.urls {
		if u == victim {
			tr.servers[i].Close()
		}
	}
	results, err = client.Run(context.Background(), items)
	if err != nil {
		t.Fatalf("batch after owner dropout: %v", err)
	}
	checkBatchResults(t, "after dropout", results, wantPayload)
}

func checkBatchResults(t *testing.T, phase string, results []batch.ItemResult, want [][]byte) {
	t.Helper()
	if len(results) != len(want) {
		t.Fatalf("%s: %d results for %d items", phase, len(results), len(want))
	}
	for i, res := range results {
		if want[i] == nil {
			if res.Error == nil || res.Error.Code != server.CodeUnknownLibrary {
				t.Errorf("%s: item %d: want unknown_library envelope, got %+v", phase, i, res)
			}
			continue
		}
		if res.Error != nil {
			t.Errorf("%s: item %d failed: %+v", phase, i, res.Error)
			continue
		}
		if !bytes.Equal(res.Result, want[i]) {
			t.Errorf("%s: item %d differs from the single-node wire (%d vs %d bytes)",
				phase, i, len(res.Result), len(want[i]))
		}
	}
}

// TestBatchItemCap pins the documented per-request cap: one item over
// MaxBatchItems rejects the whole request with the stable
// batch_too_large code before any item runs.
func TestBatchItemCap(t *testing.T) {
	ts, _ := startServer(t)
	items := make([]batch.Item, server.MaxBatchItems+1)
	for i := range items {
		items[i] = batch.Item{Op: batch.OpExtract, Fingerprint: fmt.Sprintf("po1-%032d", i)}
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch", batch.Request{Items: items})
	var envelope server.ErrorResponse
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("cap rejection is not an error envelope: %.200s", body)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge || envelope.Code != server.CodeBatchTooLarge {
		t.Fatalf("over-cap batch: status %d code %q, want 413 %q",
			resp.StatusCode, envelope.Code, server.CodeBatchTooLarge)
	}
}

// TestBatchClientResumesSeveredStream pins mid-batch dropout at the
// stream level: a replica that dies after streaming part of its NDJSON
// response loses only the unstreamed remainder — the client keeps what
// arrived and retries just the missing items.
func TestBatchClientResumesSeveredStream(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	reg := telemetry.New()
	st, err := store.Open(store.Config{Dir: t.TempDir(), MaxInflight: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	inner := server.New(st, server.Options{Registry: reg})
	ts := httptest.NewServer(inner)
	t.Cleanup(ts.Close)
	fpJDK := upload(t, ts, "jdk")
	fpHarmony := upload(t, ts, "harmony")
	wantJDK, wantHarmony, wantDiff := referenceWire(t)

	// Front: first batch request streams one line, then severs the
	// connection; later requests pass through untouched.
	var batches, itemsSeen atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/v1/batch") {
			n := batches.Add(1)
			body, _ := io.ReadAll(r.Body)
			var req batch.Request
			json.Unmarshal(body, &req)
			itemsSeen.Add(int64(len(req.Items)))
			if n == 1 {
				rec := httptest.NewRecorder()
				r2 := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
				r2.Header.Set("Content-Type", "application/json")
				inner.ServeHTTP(rec, r2)
				first, _, _ := bytes.Cut(rec.Body.Bytes(), []byte("\n"))
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.Write(first)
				w.Write([]byte("\n"))
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
				panic(http.ErrAbortHandler) // sever mid-stream
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(front.Close)

	items := []batch.Item{
		{Op: batch.OpExtract, Fingerprint: fpJDK},
		{Op: batch.OpDiff, A: fpJDK, B: fpHarmony},
		{Op: batch.OpExtract, Fingerprint: fpHarmony},
	}
	client := &batch.Client{Members: []string{front.URL}, Retries: 2, Backoff: 10 * time.Millisecond}
	results, err := client.Run(context.Background(), items)
	if err != nil {
		t.Fatalf("severed stream was not survived: %v", err)
	}
	checkBatchResults(t, "severed stream", results, [][]byte{wantJDK, wantDiff, wantHarmony})
	if batches.Load() < 2 {
		t.Fatalf("only %d batch request(s); the sever never happened", batches.Load())
	}
	// The retry re-requested only the items the severed stream lost:
	// 3 in the first request, 2 in the second.
	if got := itemsSeen.Load(); got != 5 {
		t.Errorf("replica saw %d items across retries, want 5 (3 + the 2 unstreamed)", got)
	}
}
