// Package lang provides source positions, spans, and diagnostics shared by
// the MJ frontend (lexer, parser) and all downstream analyses.
//
// MJ is the Java-subset input language of the security policy oracle; see
// DESIGN.md for the scope of the subset.
package lang

import "fmt"

// Pos is a position in an MJ source file. Line and Col are 1-based;
// Offset is the 0-based byte offset. The zero Pos is "no position".
type Pos struct {
	File   string
	Offset int
	Line   int
	Col    int
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as file:line:col, omitting empty parts.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Before reports whether p precedes q. Positions in different files are
// ordered by file name.
func (p Pos) Before(q Pos) bool {
	if p.File != q.File {
		return p.File < q.File
	}
	return p.Offset < q.Offset
}

// Span is a half-open source range [Start, End).
type Span struct {
	Start Pos
	End   Pos
}

// String renders the span's start position.
func (s Span) String() string { return s.Start.String() }

// SpanOf builds a Span from two positions.
func SpanOf(start, end Pos) Span { return Span{Start: start, End: end} }
