package lang

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, from least to most severe.
const (
	Note Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Note:
		return "note"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Diagnostic is a single message attached to a source position.
type Diagnostic struct {
	Pos      Pos
	Severity Severity
	Message  string
}

func (d Diagnostic) Error() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Message)
}

// Diagnostics accumulates diagnostics, typically per compilation.
// The zero value is ready to use.
type Diagnostics struct {
	list []Diagnostic
}

// Errorf records an error diagnostic at pos.
func (ds *Diagnostics) Errorf(pos Pos, format string, args ...any) {
	ds.list = append(ds.list, Diagnostic{Pos: pos, Severity: Error, Message: fmt.Sprintf(format, args...)})
}

// Warnf records a warning diagnostic at pos.
func (ds *Diagnostics) Warnf(pos Pos, format string, args ...any) {
	ds.list = append(ds.list, Diagnostic{Pos: pos, Severity: Warning, Message: fmt.Sprintf(format, args...)})
}

// Notef records a note diagnostic at pos.
func (ds *Diagnostics) Notef(pos Pos, format string, args ...any) {
	ds.list = append(ds.list, Diagnostic{Pos: pos, Severity: Note, Message: fmt.Sprintf(format, args...)})
}

// Add appends d verbatim.
func (ds *Diagnostics) Add(d Diagnostic) { ds.list = append(ds.list, d) }

// Merge appends all diagnostics from other.
func (ds *Diagnostics) Merge(other *Diagnostics) {
	if other != nil {
		ds.list = append(ds.list, other.list...)
	}
}

// All returns the recorded diagnostics in source order (stable for equal
// positions).
func (ds *Diagnostics) All() []Diagnostic {
	out := make([]Diagnostic, len(ds.list))
	copy(out, ds.list)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos.Before(out[j].Pos) })
	return out
}

// HasErrors reports whether any Error-severity diagnostic was recorded.
func (ds *Diagnostics) HasErrors() bool {
	for _, d := range ds.list {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Len returns the number of recorded diagnostics.
func (ds *Diagnostics) Len() int { return len(ds.list) }

// Err returns an error summarizing all Error diagnostics, or nil.
func (ds *Diagnostics) Err() error {
	var msgs []string
	for _, d := range ds.All() {
		if d.Severity == Error {
			msgs = append(msgs, d.Error())
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n"))
}
