package exceptions

import (
	"strings"
	"testing"
)

func TestThrowInsideControlFlow(t *testing.T) {
	a, p := analyze(t, excPrelude, `
package p;
public class A {
  public void f(int n) {
    for (int i = 0; i < n; i++) {
      switch (i) {
      case 1:
        throw new IOException();
      default:
        keep(i);
      }
    }
    synchronized (this) {
      while (n > 0) {
        do {
          n--;
          if (n == 3) { throw new FileNotFoundException(); }
        } while (n > 5);
      }
    }
  }
  void keep(int i) { }
}`)
	got := a.ThrownBy(entry(t, p, "p.A.f(int)"))
	if !got["IOException"] || !got["FileNotFoundException"] {
		t.Errorf("thrown = %s", got)
	}
}

func TestCatchInsideNestedTry(t *testing.T) {
	a, p := analyze(t, excPrelude, `
package p;
public class A {
  public void f() {
    try {
      try {
        throw new IOException();
      } finally {
        cleanup();
      }
    } catch (IOException e) {
      recover();
    }
  }
  void cleanup() { }
  void recover() { }
}`)
	got := a.ThrownBy(entry(t, p, "p.A.f()"))
	if len(got) != 0 {
		t.Errorf("thrown = %s, want empty", got)
	}
}

func TestTypeSetOps(t *testing.T) {
	s := TypeSet{"B": true, "A": true}
	if got := s.String(); got != "{A, B}" {
		t.Errorf("String = %q", got)
	}
	if !s.Equal(TypeSet{"A": true, "B": true}) {
		t.Error("Equal order-sensitive")
	}
	if s.Equal(TypeSet{"A": true}) || s.Equal(TypeSet{"A": true, "C": true}) {
		t.Error("Equal wrong")
	}
	if got := s.Sorted(); len(got) != 2 || got[0] != "A" {
		t.Errorf("Sorted = %v", got)
	}
}

func TestCompareSortedAndSymmetricCount(t *testing.T) {
	a, _ := analyze(t, excPrelude, `
package p;
public class Z {
  public void z() { throw new IOException(); }
}
public class A {
  public void f() { throw new IOException(); }
}`)
	b, _ := analyze(t, excPrelude, `
package p;
public class Z {
  public void z() { }
}
public class A {
  public void f() { }
}`)
	ab := Compare(a, b)
	ba := Compare(b, a)
	if len(ab) != 2 || len(ba) != 2 {
		t.Fatalf("counts: %d vs %d", len(ab), len(ba))
	}
	if !strings.Contains(ab[0].Entry, "p.A.f") {
		t.Errorf("not sorted: %v", ab)
	}
}

func TestUnresolvedCatchTypeMatchesByName(t *testing.T) {
	a, p := analyze(t, excPrelude, `
package p;
public class A {
  public void f() {
    try { g(); } catch (NoSuchType e) { }
  }
  void g() { throw new IOException(); }
}`)
	got := a.ThrownBy(entry(t, p, "p.A.f()"))
	// An unresolved handler type covers only its own name, so the
	// IOException escapes — conservative toward reporting.
	if !got["IOException"] {
		t.Errorf("thrown = %s, want IOException to escape", got)
	}
}
