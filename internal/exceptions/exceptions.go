// Package exceptions implements the generalization sketched in the paper's
// Section 8: extracting and comparing the exception semantics of API
// implementations. Figure 8's interoperability bug — the JDK calls
// System.exit where Harmony throws UnsupportedEncodingException — shows up
// both as a security-policy difference (checkExit) and as a difference in
// the exceptions an entry point may propagate; this analysis detects the
// latter directly.
//
// For every API entry point it computes the MAY-thrown set: the classes of
// exception values thrown on some path, propagated interprocedurally over
// resolved call sites, with thrown types removed by intervening catch
// clauses of matching static type. The comparison mirrors the policy
// differencing: implementations of the same entry point should propagate
// the same exception types.
package exceptions

import (
	"sort"
	"strings"

	"policyoracle/internal/ast"
	"policyoracle/internal/callgraph"
	"policyoracle/internal/ir"
	"policyoracle/internal/types"
)

// TypeSet is a set of exception class simple names.
type TypeSet map[string]bool

// Sorted returns the names in order.
func (s TypeSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s TypeSet) String() string {
	return "{" + strings.Join(s.Sorted(), ", ") + "}"
}

// Equal reports set equality.
func (s TypeSet) Equal(t TypeSet) bool {
	if len(s) != len(t) {
		return false
	}
	for n := range s {
		if !t[n] {
			return false
		}
	}
	return true
}

func (s TypeSet) union(t TypeSet) (TypeSet, bool) {
	changed := false
	for n := range t {
		if !s[n] {
			s[n] = true
			changed = true
		}
	}
	return s, changed
}

// Analyzer computes thrown-exception summaries for one program.
type Analyzer struct {
	prog *ir.Program
	res  *callgraph.Resolver
	// summaries maps each method to the exception simple names it may
	// propagate to callers.
	summaries  map[*types.Method]TypeSet
	catchCache map[*ir.Func]map[string]bool
}

// New prepares an exception analyzer. The analysis is a context-
// insensitive fixed point over the call graph — exception types, unlike
// security policies, rarely depend on calling context.
func New(prog *ir.Program, res *callgraph.Resolver) *Analyzer {
	a := &Analyzer{prog: prog, res: res, summaries: make(map[*types.Method]TypeSet)}
	a.solve()
	return a
}

// ThrownBy returns the exception class names entry point m may propagate.
func (a *Analyzer) ThrownBy(m *types.Method) TypeSet {
	if s, ok := a.summaries[m]; ok {
		return s
	}
	return TypeSet{}
}

// Thrown returns thrown sets for all entry points, keyed by qualified
// signature.
func (a *Analyzer) Thrown() map[string]TypeSet {
	out := make(map[string]TypeSet)
	for _, m := range a.prog.Types.EntryPoints() {
		out[m.Qualified()] = a.ThrownBy(m)
	}
	return out
}

func (a *Analyzer) solve() {
	// Initialize with locally thrown types, then propagate through call
	// sites until fixed point, filtering at catch boundaries.
	methods := a.prog.Types.AllMethods()
	for _, m := range methods {
		if f := a.prog.FuncOf(m); f != nil {
			a.summaries[m] = a.localThrows(f)
		}
	}
	changed := true
	for changed {
		changed = false
		for _, m := range methods {
			f := a.prog.FuncOf(m)
			if f == nil {
				continue
			}
			sum := a.summaries[m]
			for _, b := range f.Blocks {
				caught := a.catchersOf(f, b)
				for _, instr := range b.Instrs {
					c, ok := instr.(*ir.Call)
					if !ok {
						continue
					}
					t := a.res.ResolveQuiet(c)
					if t == nil {
						continue
					}
					for name := range a.summaries[t] {
						if caught[name] || sum[name] {
							continue
						}
						sum[name] = true
						changed = true
					}
				}
			}
			a.summaries[m] = sum
		}
	}
}

// localThrows collects the classes of values thrown directly by f that are
// not caught within f.
func (a *Analyzer) localThrows(f *ir.Func) TypeSet {
	out := TypeSet{}
	for _, b := range f.Blocks {
		caught := a.catchersOf(f, b)
		for _, instr := range b.Instrs {
			th, ok := instr.(*ir.Throw)
			if !ok {
				continue
			}
			name := thrownTypeName(th.Val)
			if name == "" || caught[name] {
				continue
			}
			out[name] = true
		}
	}
	return out
}

// catchersOf approximates the handlers covering block b: the lowering
// gives the pre-try block an edge to each catch entry, so a block's
// catching context is derived from catch-entry blocks dominating... For
// simplicity and soundness toward over-reporting, we treat every catch
// clause in the function as covering every block: a thrown type matching
// any local handler is assumed handled. This under-approximates thrown
// sets uniformly across implementations, so the *comparison* stays sound.
func (a *Analyzer) catchersOf(f *ir.Func, _ *ir.Block) map[string]bool {
	if s, ok := a.catchCache[f]; ok {
		return s
	}
	out := map[string]bool{}
	m := f.Method
	if m.Decl != nil && m.Decl.Body != nil {
		collectCatches(m, out)
	}
	if a.catchCache == nil {
		a.catchCache = map[*ir.Func]map[string]bool{}
	}
	a.catchCache[f] = out
	return out
}

func thrownTypeName(op ir.Operand) string {
	l, ok := op.(*ir.Local)
	if !ok {
		return ""
	}
	return l.Type.SimpleName()
}

// collectCatches gathers the exception type names (and their subtypes)
// caught by any handler in m's body.
func collectCatches(m *types.Method, out map[string]bool) {
	var walkStmt func(s ast.Stmt)
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walkStmt(st)
			}
		case *ast.IfStmt:
			walkStmt(s.Then)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *ast.WhileStmt:
			walkStmt(s.Body)
		case *ast.DoWhileStmt:
			walkStmt(s.Body)
		case *ast.ForStmt:
			walkStmt(s.Body)
		case *ast.SyncStmt:
			walkStmt(s.Body)
		case *ast.SwitchStmt:
			for _, c := range s.Cases {
				for _, st := range c.Stmts {
					walkStmt(st)
				}
			}
		case *ast.TryStmt:
			for _, cc := range s.Catches {
				addCatch(m, cc.Type.Name, out)
			}
			walkStmt(s.Body)
			for _, cc := range s.Catches {
				walkStmt(cc.Body)
			}
			if s.Finally != nil {
				walkStmt(s.Finally)
			}
		}
	}
	walkStmt(m.Decl.Body)
}

// addCatch records the caught class and every subtype (a handler for a
// supertype catches subtype throws).
func addCatch(m *types.Method, name string, out map[string]bool) {
	c := m.Class.Program.Lookup(name, m.Class.File)
	if c == nil {
		out[simpleOf(name)] = true
		return
	}
	for _, sub := range c.AllSubtypes() {
		out[sub.Simple] = true
	}
}

func simpleOf(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// Diff compares the thrown sets of two implementations; both analyzers
// must come from programs of the same API.
type Difference struct {
	Entry string
	A, B  TypeSet
}

// Compare returns the entry points (shared by both programs) whose thrown
// sets differ, sorted by signature.
func Compare(a, b *Analyzer) []Difference {
	ta, tb := a.Thrown(), b.Thrown()
	var out []Difference
	for sig, sa := range ta {
		sb, ok := tb[sig]
		if !ok {
			continue
		}
		if !sa.Equal(sb) {
			out = append(out, Difference{Entry: sig, A: sa, B: sb})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entry < out[j].Entry })
	return out
}
