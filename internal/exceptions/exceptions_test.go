package exceptions

import (
	"strings"
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/callgraph"
	"policyoracle/internal/corpus"
	"policyoracle/internal/ir"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/types"
)

func analyze(t testing.TB, srcs ...string) (*Analyzer, *ir.Program) {
	t.Helper()
	var diags lang.Diagnostics
	var files []*ast.File
	for _, src := range srcs {
		files = append(files, parser.ParseFile("t.mj", src, &diags))
	}
	tp := types.Build("t", files, &diags)
	p := ir.LowerProgram(tp, &diags)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	return New(p, callgraph.NewResolver(p)), p
}

func entry(t testing.TB, p *ir.Program, sig string) *types.Method {
	t.Helper()
	for _, m := range p.Types.EntryPoints() {
		if m.Qualified() == sig {
			return m
		}
	}
	t.Fatalf("entry %s not found", sig)
	return nil
}

const excPrelude = `
package p;
public class Object { }
public class String { }
public class Exception { }
public class IOException extends Exception { }
public class FileNotFoundException extends IOException { }
`

func TestDirectThrow(t *testing.T) {
	a, p := analyze(t, excPrelude, `
package p;
public class A {
  public void f(boolean b) {
    if (b) {
      throw new IOException();
    }
  }
}`)
	got := a.ThrownBy(entry(t, p, "p.A.f(boolean)"))
	if !got["IOException"] || len(got) != 1 {
		t.Errorf("thrown = %s", got)
	}
}

func TestInterproceduralPropagation(t *testing.T) {
	a, p := analyze(t, excPrelude, `
package p;
public class A {
  public void f() { g(); }
  void g() { h(); }
  void h() { throw new FileNotFoundException(); }
}`)
	got := a.ThrownBy(entry(t, p, "p.A.f()"))
	if !got["FileNotFoundException"] {
		t.Errorf("thrown = %s", got)
	}
}

func TestCatchStopsPropagation(t *testing.T) {
	a, p := analyze(t, excPrelude, `
package p;
public class A {
  public void f() {
    try { g(); } catch (IOException e) { recover(); }
  }
  void g() { throw new FileNotFoundException(); }
  void recover() { }
}`)
	got := a.ThrownBy(entry(t, p, "p.A.f()"))
	// FileNotFoundException is a subtype of the caught IOException.
	if len(got) != 0 {
		t.Errorf("thrown = %s, want empty (caught)", got)
	}
}

func TestCatchOfUnrelatedTypeDoesNotStop(t *testing.T) {
	a, p := analyze(t, excPrelude, `
package p;
public class Unrelated extends Exception { }
public class A {
	public void f() {
		try { g(); } catch (Unrelated e) { }
	}
	void g() { throw new IOException(); }
}`)
	got := a.ThrownBy(entry(t, p, "p.A.f()"))
	if !got["IOException"] {
		t.Errorf("thrown = %s, want IOException to escape", got)
	}
}

func TestRecursionConverges(t *testing.T) {
	a, p := analyze(t, excPrelude, `
package p;
public class A {
  public void f(int n) {
    if (n > 0) { f(n - 1); }
    throw new IOException();
  }
}`)
	got := a.ThrownBy(entry(t, p, "p.A.f(int)"))
	if !got["IOException"] {
		t.Errorf("thrown = %s", got)
	}
}

func TestCompareReportsDifferences(t *testing.T) {
	a, _ := analyze(t, excPrelude, `
package p;
public class A {
  public void f() { throw new IOException(); }
}`)
	b, _ := analyze(t, excPrelude, `
package p;
public class A {
  public void f() { }
}`)
	diffs := Compare(a, b)
	if len(diffs) != 1 || diffs[0].Entry != "p.A.f()" {
		t.Fatalf("diffs = %v", diffs)
	}
	if !diffs[0].A["IOException"] || len(diffs[0].B) != 0 {
		t.Errorf("diff sides = %s vs %s", diffs[0].A, diffs[0].B)
	}
}

// TestFigure8ExceptionSemantics runs the Section 8 generalization on the
// bundled corpora: Harmony's getBytes path propagates
// UnsupportedEncodingException where the JDK's exits the VM.
func TestFigure8ExceptionSemantics(t *testing.T) {
	load := func(name string) (*Analyzer, *ir.Program) {
		var diags lang.Diagnostics
		var files []*ast.File
		srcs := corpus.Sources(name)
		var names []string
		for n := range srcs {
			names = append(names, n)
		}
		// Deterministic order.
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				if names[j] < names[i] {
					names[i], names[j] = names[j], names[i]
				}
			}
		}
		for _, n := range names {
			files = append(files, parser.ParseFile(n, srcs[n], &diags))
		}
		tp := types.Build(name, files, &diags)
		p := ir.LowerProgram(tp, &diags)
		if diags.HasErrors() {
			t.Fatalf("%s: %v", name, diags.Err())
		}
		return New(p, callgraph.NewResolver(p)), p
	}
	jdk, _ := load("jdk")
	harmony, _ := load("harmony")
	diffs := Compare(jdk, harmony)
	found := false
	for _, d := range diffs {
		if strings.Contains(d.Entry, "StringOps.getBytes") {
			found = true
			if !d.B["UnsupportedEncodingException"] {
				t.Errorf("harmony thrown = %s", d.B)
			}
			if len(d.A) != 0 {
				t.Errorf("jdk thrown = %s, want empty (exits instead)", d.A)
			}
		}
	}
	if !found {
		t.Errorf("Figure 8 exception difference not reported: %v", diffs)
	}
}
