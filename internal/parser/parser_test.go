package parser

import (
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	var diags lang.Diagnostics
	f := ParseFile("test.mj", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors: %v", diags.Err())
	}
	return f
}

func TestPackageAndImports(t *testing.T) {
	f := parse(t, `
package java.net;
import java.lang.SecurityManager;
import java.io.*;
class Empty { }
`)
	if f.Package != "java.net" {
		t.Errorf("package = %q", f.Package)
	}
	if len(f.Imports) != 2 || f.Imports[0] != "java.lang.SecurityManager" || f.Imports[1] != "java.io.*" {
		t.Errorf("imports = %v", f.Imports)
	}
	if len(f.Types) != 1 || f.Types[0].Name != "Empty" {
		t.Fatalf("types = %v", f.Types)
	}
}

func TestClassHeader(t *testing.T) {
	f := parse(t, `
package p;
public final class Socket extends AbstractSocket implements Closeable, Channel { }
`)
	td := f.Types[0]
	if !td.Mods.Has(ast.ModPublic) || !td.Mods.Has(ast.ModFinal) {
		t.Errorf("mods = %v", td.Mods)
	}
	if td.Extends != "AbstractSocket" {
		t.Errorf("extends = %q", td.Extends)
	}
	if len(td.Implements) != 2 || td.Implements[0] != "Closeable" || td.Implements[1] != "Channel" {
		t.Errorf("implements = %v", td.Implements)
	}
}

func TestInterfaceDecl(t *testing.T) {
	f := parse(t, `
package p;
public interface PrivilegedAction extends Action {
  Object run();
}
`)
	td := f.Types[0]
	if !td.IsInterface {
		t.Fatal("not an interface")
	}
	if len(td.Implements) != 1 || td.Implements[0] != "Action" {
		t.Errorf("extended interfaces = %v", td.Implements)
	}
	if len(td.Methods) != 1 || td.Methods[0].Name != "run" || td.Methods[0].Body != nil {
		t.Errorf("methods = %+v", td.Methods)
	}
}

func TestFields(t *testing.T) {
	f := parse(t, `
package p;
class C {
  private int connectState;
  private static final int ST_CONNECTED = 1, ST_IDLE = 0;
  protected SecurityManager sm = null;
}
`)
	td := f.Types[0]
	if len(td.Fields) != 4 {
		t.Fatalf("got %d fields", len(td.Fields))
	}
	if td.Fields[0].Name != "connectState" || !td.Fields[0].Mods.Has(ast.ModPrivate) {
		t.Errorf("field 0 = %+v", td.Fields[0])
	}
	if td.Fields[1].Name != "ST_CONNECTED" || td.Fields[2].Name != "ST_IDLE" {
		t.Errorf("multi-declarator split wrong: %v %v", td.Fields[1].Name, td.Fields[2].Name)
	}
	if td.Fields[3].Init == nil {
		t.Error("field sm missing initializer")
	}
}

func TestMethodsAndConstructors(t *testing.T) {
	f := parse(t, `
package p;
class DatagramSocket {
  public DatagramSocket(int port) { this.port = port; }
  public synchronized void connect(InetAddress address, int port) { return; }
  native int bind0(int port);
  public abstract void close();
}
`)
	td := f.Types[0]
	if len(td.Methods) != 4 {
		t.Fatalf("got %d methods", len(td.Methods))
	}
	ctor := td.Methods[0]
	if !ctor.IsCtor || ctor.Name != "DatagramSocket" || len(ctor.Params) != 1 {
		t.Errorf("ctor = %+v", ctor)
	}
	m := td.Methods[1]
	if m.Name != "connect" || !m.Mods.Has(ast.ModSynchronized) || len(m.Params) != 2 {
		t.Errorf("connect = %+v", m)
	}
	if m.Params[0].Type.Name != "InetAddress" || m.Params[1].Type.Name != "int" {
		t.Errorf("params = %+v", m.Params)
	}
	nat := td.Methods[2]
	if !nat.Mods.Has(ast.ModNative) || nat.Body != nil {
		t.Errorf("native = %+v", nat)
	}
	if td.Methods[3].Body != nil {
		t.Error("abstract method has body")
	}
}

func TestNativeWithBodyIsError(t *testing.T) {
	var diags lang.Diagnostics
	ParseFile("t.mj", `package p; class C { native void f() { } }`, &diags)
	if !diags.HasErrors() {
		t.Error("expected error for native method with body")
	}
}

func TestBodylessNonNativeIsError(t *testing.T) {
	var diags lang.Diagnostics
	ParseFile("t.mj", `package p; class C { void f(); }`, &diags)
	if !diags.HasErrors() {
		t.Error("expected error for bodyless non-native method")
	}
}

func firstMethodBody(t *testing.T, src string) *ast.Block {
	t.Helper()
	f := parse(t, "package p; class C { void m() { "+src+" } }")
	return f.Types[0].Methods[0].Body
}

func TestIfElseChain(t *testing.T) {
	b := firstMethodBody(t, `
if (address.isMulticastAddress()) {
  sm.checkMulticast(address);
} else {
  sm.checkConnect(address.getHostAddress(), port);
  sm.checkAccept(address.getHostAddress(), port);
}
`)
	ifs, ok := b.Stmts[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt 0 is %T", b.Stmts[0])
	}
	if _, ok := ifs.Cond.(*ast.CallExpr); !ok {
		t.Errorf("cond is %T", ifs.Cond)
	}
	then := ifs.Then.(*ast.Block)
	if len(then.Stmts) != 1 {
		t.Errorf("then has %d stmts", len(then.Stmts))
	}
	els := ifs.Else.(*ast.Block)
	if len(els.Stmts) != 2 {
		t.Errorf("else has %d stmts", len(els.Stmts))
	}
}

func TestLoops(t *testing.T) {
	b := firstMethodBody(t, `
while (i < n) { i = i + 1; }
for (int j = 0; j < 10; j++) { use(j); }
do { i--; } while (i > 0);
`)
	if _, ok := b.Stmts[0].(*ast.WhileStmt); !ok {
		t.Errorf("stmt 0 is %T", b.Stmts[0])
	}
	fs, ok := b.Stmts[1].(*ast.ForStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T", b.Stmts[1])
	}
	if _, ok := fs.Init.(*ast.LocalVarDecl); !ok {
		t.Errorf("for init is %T", fs.Init)
	}
	if fs.Cond == nil || fs.Post == nil {
		t.Error("for cond/post missing")
	}
	if _, ok := b.Stmts[2].(*ast.DoWhileStmt); !ok {
		t.Errorf("stmt 2 is %T", b.Stmts[2])
	}
}

func TestTryCatchFinally(t *testing.T) {
	b := firstMethodBody(t, `
try {
  risky();
} catch (UnsupportedEncodingException x) {
  System.exit(1);
} finally {
  cleanup();
}
`)
	ts, ok := b.Stmts[0].(*ast.TryStmt)
	if !ok {
		t.Fatalf("stmt is %T", b.Stmts[0])
	}
	if len(ts.Catches) != 1 || ts.Catches[0].Type.Name != "UnsupportedEncodingException" {
		t.Errorf("catches = %+v", ts.Catches)
	}
	if ts.Finally == nil {
		t.Error("finally missing")
	}
}

func TestSynchronizedStmt(t *testing.T) {
	b := firstMethodBody(t, `synchronized (lock) { impl.connect(a, p); }`)
	ss, ok := b.Stmts[0].(*ast.SyncStmt)
	if !ok {
		t.Fatalf("stmt is %T", b.Stmts[0])
	}
	if len(ss.Body.Stmts) != 1 {
		t.Errorf("sync body = %+v", ss.Body)
	}
}

func TestSwitch(t *testing.T) {
	b := firstMethodBody(t, `
switch (kind) {
case 1:
  a();
  break;
case 2:
default:
  b();
}
`)
	sw, ok := b.Stmts[0].(*ast.SwitchStmt)
	if !ok {
		t.Fatalf("stmt is %T", b.Stmts[0])
	}
	if len(sw.Cases) != 3 {
		t.Fatalf("got %d cases", len(sw.Cases))
	}
	if !sw.Cases[2].IsDefault {
		t.Error("case 2 should be default")
	}
	if len(sw.Cases[1].Stmts) != 0 {
		t.Error("fallthrough case should be empty")
	}
}

func TestExpressions(t *testing.T) {
	b := firstMethodBody(t, `
x = a + b * c;
y = (Type) obj;
z = obj instanceof InetSocketAddress;
w = cond ? f() : g();
n = new NativeLibrary(fromClass, name);
arr = new byte[16];
v = arr[3];
s = this.handler;
`)
	as := b.Stmts[0].(*ast.AssignStmt)
	sum := as.Value.(*ast.BinaryExpr)
	if sum.Op != "+" {
		t.Errorf("top op = %q", sum.Op)
	}
	if mul, ok := sum.Y.(*ast.BinaryExpr); !ok || mul.Op != "*" {
		t.Errorf("precedence wrong: %+v", sum.Y)
	}
	if _, ok := b.Stmts[1].(*ast.AssignStmt).Value.(*ast.CastExpr); !ok {
		t.Errorf("cast not parsed: %T", b.Stmts[1].(*ast.AssignStmt).Value)
	}
	if _, ok := b.Stmts[2].(*ast.AssignStmt).Value.(*ast.InstanceOfExpr); !ok {
		t.Error("instanceof not parsed")
	}
	if _, ok := b.Stmts[3].(*ast.AssignStmt).Value.(*ast.CondExpr); !ok {
		t.Error("ternary not parsed")
	}
	if ne, ok := b.Stmts[4].(*ast.AssignStmt).Value.(*ast.NewExpr); !ok || len(ne.Args) != 2 {
		t.Error("new not parsed")
	}
	if na, ok := b.Stmts[5].(*ast.AssignStmt).Value.(*ast.NewArrayExpr); !ok || na.Len == nil {
		t.Error("new array not parsed")
	}
	if _, ok := b.Stmts[6].(*ast.AssignStmt).Value.(*ast.IndexExpr); !ok {
		t.Error("index not parsed")
	}
	if fa, ok := b.Stmts[7].(*ast.AssignStmt).Value.(*ast.FieldAccess); !ok || fa.Name != "handler" {
		t.Error("this.field not parsed")
	}
}

func TestCallChains(t *testing.T) {
	b := firstMethodBody(t, `securityManager.checkConnect(epoint.getAddress().getHostAddress(), epoint.getPort());`)
	es := b.Stmts[0].(*ast.ExprStmt)
	call := es.X.(*ast.CallExpr)
	if call.Name != "checkConnect" || len(call.Args) != 2 {
		t.Fatalf("call = %+v", call)
	}
	inner := call.Args[0].(*ast.CallExpr)
	if inner.Name != "getHostAddress" {
		t.Errorf("chained call = %+v", inner)
	}
	if innerRecv, ok := inner.Recv.(*ast.CallExpr); !ok || innerRecv.Name != "getAddress" {
		t.Errorf("chain receiver = %+v", inner.Recv)
	}
}

func TestThisAndSuperCtorCalls(t *testing.T) {
	f := parse(t, `
package p;
class URL {
  public URL(String spec) { this(null, spec, null); }
  public URL(URL context, String spec, URLStreamHandler handler) { super(); }
}
`)
	c1 := f.Types[0].Methods[0]
	es := c1.Body.Stmts[0].(*ast.ExprStmt)
	call := es.X.(*ast.CallExpr)
	if call.Name != "this" || len(call.Args) != 3 {
		t.Errorf("this(...) = %+v", call)
	}
	c2 := f.Types[0].Methods[1]
	call2 := c2.Body.Stmts[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	if call2.Name != "super" {
		t.Errorf("super(...) = %+v", call2)
	}
}

func TestShortCircuitAndUnary(t *testing.T) {
	b := firstMethodBody(t, `if (handler != null && !done) { go(); }`)
	ifs := b.Stmts[0].(*ast.IfStmt)
	and := ifs.Cond.(*ast.BinaryExpr)
	if and.Op != "&&" {
		t.Fatalf("op = %q", and.Op)
	}
	if u, ok := and.Y.(*ast.UnaryExpr); !ok || u.Op != "!" {
		t.Errorf("unary = %+v", and.Y)
	}
}

func TestLocalDeclVsExprDisambiguation(t *testing.T) {
	b := firstMethodBody(t, `
InetSocketAddress epoint = (InetSocketAddress) proxy.address();
epoint.isUnresolved();
java.util.List xs = null;
x = y;
`)
	if _, ok := b.Stmts[0].(*ast.LocalVarDecl); !ok {
		t.Errorf("stmt 0 is %T", b.Stmts[0])
	}
	if _, ok := b.Stmts[1].(*ast.ExprStmt); !ok {
		t.Errorf("stmt 1 is %T", b.Stmts[1])
	}
	ld, ok := b.Stmts[2].(*ast.LocalVarDecl)
	if !ok || ld.Type.Name != "java.util.List" {
		t.Errorf("stmt 2 = %+v", b.Stmts[2])
	}
	if _, ok := b.Stmts[3].(*ast.AssignStmt); !ok {
		t.Errorf("stmt 3 is %T", b.Stmts[3])
	}
}

func TestArrayTypes(t *testing.T) {
	f := parse(t, `
package p;
class C {
  public byte[] getBytes() { return null; }
  void enc(char[] ca, int off) { }
}
`)
	m := f.Types[0].Methods[0]
	if m.Ret.Name != "byte" || m.Ret.Dims != 1 {
		t.Errorf("ret = %+v", m.Ret)
	}
	p0 := f.Types[0].Methods[1].Params[0]
	if p0.Type.Dims != 1 {
		t.Errorf("param = %+v", p0)
	}
}

func TestErrorRecovery(t *testing.T) {
	var diags lang.Diagnostics
	f := ParseFile("t.mj", `
package p;
class Bad { void m( { } }
class Good { void ok() { } }
`, &diags)
	if !diags.HasErrors() {
		t.Error("expected parse errors")
	}
	found := false
	for _, td := range f.Types {
		if td.Name == "Good" {
			found = true
		}
	}
	if !found {
		t.Error("parser did not recover to parse class Good")
	}
}
