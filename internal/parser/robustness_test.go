package parser

import (
	"math/rand"
	"strings"
	"testing"

	"policyoracle/internal/lang"
)

// TestMalformedInputsDoNotPanic feeds the parser deliberately broken
// sources; it must produce diagnostics, never panic or loop.
func TestMalformedInputsDoNotPanic(t *testing.T) {
	cases := []string{
		"",
		";",
		"package",
		"package ;",
		"class",
		"class C",
		"class C {",
		"class C { void }",
		"class C { void m( }",
		"class C { void m() { if } }",
		"class C { void m() { if ( } }",
		"class C { void m() { x = ; } }",
		"class C { void m() { return",
		"class C { int f = ; }",
		"class C { void m() { new } }",
		"class C { void m() { a.b.( ); } }",
		"class C { void m() { for (;;) } }",
		"class C { void m() { switch (x) { case } } }",
		"class C { void m() { try { } } }", // try without catch/finally
		"interface I { void m() { } }",
		"class C extends { }",
		"class C { synchronized } ",
		"@@@@",
		"class C { void m() { ((((((((((x)))))))))); } }",
		strings.Repeat("{", 500),
		strings.Repeat("class C { ", 100),
		"class C { void m() { x = 999999999999999999999999; } }",
	}
	for _, src := range cases {
		var diags lang.Diagnostics
		f := ParseFile("bad.mj", src, &diags)
		if f == nil {
			t.Errorf("nil file for %q", truncate(src))
		}
	}
}

// TestMutatedSourcesDoNotPanic randomly perturbs a valid source file and
// parses every mutant.
func TestMutatedSourcesDoNotPanic(t *testing.T) {
	const valid = `
package java.net;
import java.lang.*;
public class Socket {
  private SecurityManager securityManager;
  private int state;
  public void connect(SocketAddress endpoint, int timeout) {
    InetSocketAddress epoint = (InetSocketAddress) endpoint;
    if (epoint.isUnresolved() && timeout > 0) {
      securityManager.checkConnect(epoint.getHostName(), epoint.getPort());
    } else {
      securityManager.checkConnect("localhost", 80);
    }
    for (int i = 0; i < timeout; i++) {
      state += 1;
    }
    try { impl.connect(endpoint, timeout); } catch (Exception e) { throw e; }
  }
}
`
	r := rand.New(rand.NewSource(7))
	mutate := func(s string) string {
		b := []byte(s)
		switch r.Intn(4) {
		case 0: // delete a span
			if len(b) > 10 {
				i := r.Intn(len(b) - 5)
				n := r.Intn(5) + 1
				b = append(b[:i], b[i+n:]...)
			}
		case 1: // duplicate a span
			if len(b) > 10 {
				i := r.Intn(len(b) - 5)
				b = append(b[:i], append([]byte(string(b[i:i+5])), b[i:]...)...)
			}
		case 2: // flip a character
			i := r.Intn(len(b))
			b[i] = byte("{}();.=+-!&|<>\"'x7"[r.Intn(18)])
		case 3: // truncate
			b = b[:r.Intn(len(b))]
		}
		return string(b)
	}
	for i := 0; i < 500; i++ {
		src := valid
		for m := 0; m <= r.Intn(3); m++ {
			src = mutate(src)
		}
		var diags lang.Diagnostics
		ParseFile("mut.mj", src, &diags) // must not panic
	}
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
