package parser

import (
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/corpus"
	"policyoracle/internal/lang"
)

// BenchmarkParseCorpus measures the MJ frontend over the bundled jdk
// corpus (lexing + parsing).
func BenchmarkParseCorpus(b *testing.B) {
	sources := corpus.JDKSources()
	bytes := 0
	for _, src := range sources {
		bytes += len(src)
	}
	b.SetBytes(int64(bytes))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var diags lang.Diagnostics
		for name, src := range sources {
			ParseFile(name, src, &diags)
		}
		if diags.HasErrors() {
			b.Fatal(diags.Err())
		}
	}
}

// BenchmarkPrintCorpus measures the canonical printer over pre-parsed
// files.
func BenchmarkPrintCorpus(b *testing.B) {
	var diags lang.Diagnostics
	var files []*ast.File
	for name, src := range corpus.JDKSources() {
		files = append(files, ParseFile(name, src, &diags))
	}
	if diags.HasErrors() {
		b.Fatal(diags.Err())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range files {
			if out := ast.Print(f); len(out) == 0 {
				b.Fatal("empty print")
			}
		}
	}
}
