package parser

import (
	"strconv"

	"policyoracle/internal/ast"
	"policyoracle/internal/token"
)

// Binary operator precedence, loosest first.
var binPrec = map[token.Kind]int{
	token.OrOr:   1,
	token.AndAnd: 2,
	token.BitOr:  3,
	token.Caret:  4,
	token.BitAnd: 5,
	token.Eq:     6, token.NotEq: 6,
	token.Lt: 7, token.Gt: 7, token.LtEq: 7, token.GtEq: 7, token.KwInstanceof: 7,
	token.Plus: 8, token.Minus: 8,
	token.Star: 9, token.Slash: 9, token.Percent: 9,
}

func (p *Parser) parseExpr() ast.Expr { return p.parseCond() }

func (p *Parser) parseCond() ast.Expr {
	x := p.parseBinary(1)
	if p.cur().Kind == token.Question {
		start := p.advance().Pos
		then := p.parseExpr()
		p.expect(token.Colon)
		els := p.parseCond()
		return &ast.CondExpr{Cond: x, Then: then, Else: els, Start: start}
	}
	return x
}

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		k := p.cur().Kind
		prec, ok := binPrec[k]
		if !ok || prec < minPrec {
			return x
		}
		opTok := p.advance()
		if k == token.KwInstanceof {
			typ, tok := p.parseTypeRef()
			if !tok {
				p.diags.Errorf(p.cur().Pos, "expected type after instanceof")
			}
			x = &ast.InstanceOfExpr{X: x, Type: typ, Start: opTok.Pos}
			continue
		}
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{Op: opTok.Text, X: x, Y: y, Start: opTok.Pos}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	start := p.cur().Pos
	switch p.cur().Kind {
	case token.Not:
		p.advance()
		return &ast.UnaryExpr{Op: "!", X: p.parseUnary(), Start: start}
	case token.Minus:
		p.advance()
		return &ast.UnaryExpr{Op: "-", X: p.parseUnary(), Start: start}
	case token.PlusPlus, token.MinusLess:
		op := p.advance().Text
		return &ast.IncDecExpr{X: p.parseUnary(), Op: op, Start: start}
	case token.LParen:
		if p.isCastAhead() {
			p.advance() // (
			typ, _ := p.parseTypeRef()
			p.expect(token.RParen)
			return &ast.CastExpr{Type: typ, X: p.parseUnary(), Start: start}
		}
	}
	return p.parsePostfix()
}

// isCastAhead reports whether the current '(' starts a cast expression.
// Primitive-type casts are unambiguous. For reference types, a cast is
// assumed when the parenthesized content is a (dotted) name with optional
// array dims and the token after ')' can begin a cast operand.
func (p *Parser) isCastAhead() bool {
	i := 1
	if p.at(i).Kind.IsPrimitiveType() {
		return true
	}
	if p.at(i).Kind != token.Ident {
		return false
	}
	i++
	for p.at(i).Kind == token.Dot && p.at(i+1).Kind == token.Ident {
		i += 2
	}
	for p.at(i).Kind == token.LBracket && p.at(i+1).Kind == token.RBracket {
		i += 2
	}
	if p.at(i).Kind != token.RParen {
		return false
	}
	switch p.at(i + 1).Kind {
	case token.Ident, token.IntLit, token.StringLit, token.CharLit,
		token.KwThis, token.KwNew, token.KwNull, token.KwTrue, token.KwFalse,
		token.LParen, token.Not:
		return true
	}
	return false
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.Dot:
			p.advance()
			name := p.expect(token.Ident).Text
			if p.cur().Kind == token.LParen {
				args := p.parseArgs()
				x = &ast.CallExpr{Recv: x, Name: name, Args: args, Start: x.Pos()}
			} else {
				x = &ast.FieldAccess{X: x, Name: name, Start: x.Pos()}
			}
		case token.LBracket:
			p.advance()
			idx := p.parseExpr()
			p.expect(token.RBracket)
			x = &ast.IndexExpr{X: x, Index: idx, Start: x.Pos()}
		case token.PlusPlus, token.MinusLess:
			op := p.advance().Text
			x = &ast.IncDecExpr{X: x, Op: op, Start: x.Pos()}
		default:
			return x
		}
	}
}

func (p *Parser) parseArgs() []ast.Expr {
	p.expect(token.LParen)
	var args []ast.Expr
	for p.cur().Kind != token.RParen && p.cur().Kind != token.EOF {
		args = append(args, p.parseExpr())
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RParen)
	return args
}

func (p *Parser) parsePrimary() ast.Expr {
	start := p.cur().Pos
	switch p.cur().Kind {
	case token.IntLit:
		t := p.advance()
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			p.diags.Errorf(t.Pos, "invalid integer literal %q", t.Text)
		}
		return &ast.Literal{Kind: ast.LitInt, Int: v, Start: start}
	case token.StringLit:
		t := p.advance()
		return &ast.Literal{Kind: ast.LitString, Str: t.Text, Start: start}
	case token.CharLit:
		t := p.advance()
		var v int64
		if len(t.Text) > 0 {
			v = int64(t.Text[0])
		}
		return &ast.Literal{Kind: ast.LitChar, Int: v, Start: start}
	case token.KwTrue:
		p.advance()
		return &ast.Literal{Kind: ast.LitBool, Bool: true, Start: start}
	case token.KwFalse:
		p.advance()
		return &ast.Literal{Kind: ast.LitBool, Bool: false, Start: start}
	case token.KwNull:
		p.advance()
		return &ast.Literal{Kind: ast.LitNull, Start: start}
	case token.KwThis:
		p.advance()
		if p.cur().Kind == token.LParen { // this(...) constructor call
			args := p.parseArgs()
			return &ast.CallExpr{Name: "this", Args: args, Start: start}
		}
		return &ast.VarRef{Name: "this", Start: start}
	case token.KwSuper:
		p.advance()
		if p.cur().Kind == token.LParen { // super(...) constructor call
			args := p.parseArgs()
			return &ast.CallExpr{Name: "super", Args: args, Start: start}
		}
		// super.m(...) or super.f
		p.expect(token.Dot)
		name := p.expect(token.Ident).Text
		recv := &ast.VarRef{Name: "super", Start: start}
		if p.cur().Kind == token.LParen {
			args := p.parseArgs()
			return &ast.CallExpr{Recv: recv, Name: name, Args: args, Start: start}
		}
		return &ast.FieldAccess{X: recv, Name: name, Start: start}
	case token.KwNew:
		return p.parseNew()
	case token.LParen:
		p.advance()
		x := p.parseExpr()
		p.expect(token.RParen)
		return x
	case token.Ident:
		name := p.advance().Text
		if p.cur().Kind == token.LParen {
			args := p.parseArgs()
			return &ast.CallExpr{Name: name, Args: args, Start: start}
		}
		return &ast.VarRef{Name: name, Start: start}
	}
	p.diags.Errorf(start, "expected expression, found %s", p.cur())
	p.advance()
	return &ast.Literal{Kind: ast.LitNull, Start: start}
}

func (p *Parser) parseNew() ast.Expr {
	start := p.expect(token.KwNew).Pos
	var typ ast.TypeRef
	if p.cur().Kind.IsPrimitiveType() {
		typ.Name = p.advance().Text
	} else {
		typ.Name = p.parseDottedName()
	}
	if p.cur().Kind == token.LBracket {
		// new T[len] or new T[] { ... }
		p.advance()
		na := &ast.NewArrayExpr{Type: typ, Start: start}
		if p.cur().Kind != token.RBracket {
			na.Len = p.parseExpr()
		}
		p.expect(token.RBracket)
		for p.cur().Kind == token.LBracket && p.peek().Kind == token.RBracket {
			p.advance()
			p.advance()
			na.Type.Dims++
		}
		if p.cur().Kind == token.LBrace {
			p.advance()
			for p.cur().Kind != token.RBrace && p.cur().Kind != token.EOF {
				na.Elems = append(na.Elems, p.parseExpr())
				if !p.accept(token.Comma) {
					break
				}
			}
			p.expect(token.RBrace)
		}
		return na
	}
	ne := &ast.NewExpr{Type: typ, Start: start}
	ne.Args = p.parseArgs()
	return ne
}
