package parser

import (
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/corpus"
	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/lang"
)

// roundtrip parses src, prints it, reparses, reprints, and requires the
// two printed forms to be identical — the printer's canonical form is a
// fixed point of parse∘print.
func roundtrip(t *testing.T, name, src string) {
	t.Helper()
	var d1 lang.Diagnostics
	f1 := ParseFile(name, src, &d1)
	if d1.HasErrors() {
		t.Fatalf("%s: parse 1: %v", name, d1.Err())
	}
	p1 := ast.Print(f1)
	var d2 lang.Diagnostics
	f2 := ParseFile(name, p1, &d2)
	if d2.HasErrors() {
		t.Fatalf("%s: reparse failed: %v\nprinted:\n%s", name, d2.Err(), p1)
	}
	p2 := ast.Print(f2)
	if p1 != p2 {
		t.Errorf("%s: print not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", name, p1, p2)
	}
}

func TestRoundtripHandwrittenCorpora(t *testing.T) {
	for _, lib := range corpus.Libraries() {
		for name, src := range corpus.Sources(lib) {
			roundtrip(t, lib+"/"+name, src)
		}
	}
}

func TestRoundtripGeneratedCorpus(t *testing.T) {
	c := gen.Generate(gen.Small())
	for lib, srcs := range c.Sources {
		for name, src := range srcs {
			roundtrip(t, lib+"/"+name, src)
		}
	}
}

func TestRoundtripConstructs(t *testing.T) {
	cases := map[string]string{
		"for-variants": `
package p;
class C {
  void m(int n) {
    for (int i = 0; i < n; i++) { use(i); }
    for (; n > 0; ) { n--; }
    for (;;) { break; }
  }
  void use(int i) { }
}`,
		"switch": `
package p;
class C {
  int m(int k) {
    switch (k) {
    case 1: return 1;
    case 2:
    default: return 0;
    }
  }
}`,
		"try": `
package p;
class C {
  void m() {
    try { a(); } catch (E1 e) { b(); } catch (E2 e) { c(); } finally { d(); }
  }
  void a() { } void b() { } void c() { } void d() { }
}
class E1 { }
class E2 { }`,
		"expressions": `
package p;
class C {
  int m(int a, int b, boolean c) {
    int x = a + b * 3 - (a / (b + 1));
    boolean y = !c && (a < b || a >= 3);
    Object o = c ? null : new Object();
    String s = "a\n\"b\"" + 'x';
    int[] arr = new int[4];
    arr[0] = -x;
    x += 2;
    x++;
    return (int) x;
  }
}
class Object { }
class String { }`,
		"members": `
package p;
public abstract class A extends B implements I, J {
  private static final int K = 3;
  protected A(int k) { super(); }
  public abstract void m();
  native int n(String s);
  synchronized void s() { synchronized (this) { } }
}
class B { B() { } }
interface I { }
interface J { }
class String { }`,
	}
	for name, src := range cases {
		roundtrip(t, name, src)
	}
}
