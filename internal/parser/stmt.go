package parser

import (
	"policyoracle/internal/ast"
	"policyoracle/internal/token"
)

func (p *Parser) parseBlock() *ast.Block {
	b := &ast.Block{Start: p.cur().Pos}
	p.expect(token.LBrace)
	for p.cur().Kind != token.RBrace && p.cur().Kind != token.EOF {
		before := p.pos
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.pos == before { // guarantee progress on malformed input
			p.advance()
		}
	}
	p.expect(token.RBrace)
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	start := p.cur().Pos
	switch p.cur().Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.Semi:
		p.advance()
		return &ast.Block{Start: start} // empty statement
	case token.KwIf:
		p.advance()
		p.expect(token.LParen)
		cond := p.parseExpr()
		p.expect(token.RParen)
		then := p.parseStmt()
		var els ast.Stmt
		if p.accept(token.KwElse) {
			els = p.parseStmt()
		}
		return &ast.IfStmt{Cond: cond, Then: then, Else: els, Start: start}
	case token.KwWhile:
		p.advance()
		p.expect(token.LParen)
		cond := p.parseExpr()
		p.expect(token.RParen)
		return &ast.WhileStmt{Cond: cond, Body: p.parseStmt(), Start: start}
	case token.KwDo:
		p.advance()
		body := p.parseStmt()
		p.expect(token.KwWhile)
		p.expect(token.LParen)
		cond := p.parseExpr()
		p.expect(token.RParen)
		p.expect(token.Semi)
		return &ast.DoWhileStmt{Body: body, Cond: cond, Start: start}
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		p.advance()
		var val ast.Expr
		if p.cur().Kind != token.Semi {
			val = p.parseExpr()
		}
		p.expect(token.Semi)
		return &ast.ReturnStmt{Value: val, Start: start}
	case token.KwThrow:
		p.advance()
		val := p.parseExpr()
		p.expect(token.Semi)
		return &ast.ThrowStmt{Value: val, Start: start}
	case token.KwBreak:
		p.advance()
		p.expect(token.Semi)
		return &ast.BreakStmt{Start: start}
	case token.KwContinue:
		p.advance()
		p.expect(token.Semi)
		return &ast.ContinueStmt{Start: start}
	case token.KwSynchronized:
		p.advance()
		p.expect(token.LParen)
		lock := p.parseExpr()
		p.expect(token.RParen)
		return &ast.SyncStmt{Lock: lock, Body: p.parseBlock(), Start: start}
	case token.KwTry:
		return p.parseTry()
	case token.KwSwitch:
		return p.parseSwitch()
	}

	// Local variable declaration vs expression/assignment statement.
	if p.looksLikeLocalDecl() {
		return p.parseLocalDecl()
	}
	return p.parseExprOrAssign()
}

// looksLikeLocalDecl distinguishes `Type name ...` from expressions.
func (p *Parser) looksLikeLocalDecl() bool {
	k := p.cur().Kind
	if k.IsPrimitiveType() {
		return true
	}
	if k != token.Ident {
		return false
	}
	// Scan over a dotted name and array dims, then require an identifier.
	i := 1
	for p.at(i).Kind == token.Dot && p.at(i+1).Kind == token.Ident {
		i += 2
	}
	for p.at(i).Kind == token.LBracket && p.at(i+1).Kind == token.RBracket {
		i += 2
	}
	return p.at(i).Kind == token.Ident
}

func (p *Parser) parseLocalDecl() ast.Stmt {
	start := p.cur().Pos
	typ, _ := p.parseTypeRef()
	b := &ast.Block{Start: start}
	for {
		name := p.expect(token.Ident).Text
		d := &ast.LocalVarDecl{Type: typ, Name: name, Start: start}
		if p.accept(token.Assign) {
			d.Init = p.parseExpr()
		}
		b.Stmts = append(b.Stmts, d)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.Semi)
	if len(b.Stmts) == 1 {
		return b.Stmts[0]
	}
	return b
}

func (p *Parser) parseExprOrAssign() ast.Stmt {
	start := p.cur().Pos
	x := p.parseExpr()
	switch p.cur().Kind {
	case token.Assign:
		p.advance()
		v := p.parseExpr()
		p.expect(token.Semi)
		return &ast.AssignStmt{Target: x, Op: "=", Value: v, Start: start}
	case token.PlusEq, token.MinusEq, token.StarEq, token.SlashEq:
		op := p.advance().Text
		v := p.parseExpr()
		p.expect(token.Semi)
		return &ast.AssignStmt{Target: x, Op: op, Value: v, Start: start}
	}
	p.expect(token.Semi)
	return &ast.ExprStmt{X: x, Start: start}
}

func (p *Parser) parseFor() ast.Stmt {
	start := p.cur().Pos
	p.expect(token.KwFor)
	p.expect(token.LParen)
	var init ast.Stmt
	if p.cur().Kind != token.Semi {
		if p.looksLikeLocalDecl() {
			init = p.parseLocalDecl() // consumes the ';'
		} else {
			init = p.parseForClause()
			p.expect(token.Semi)
		}
	} else {
		p.expect(token.Semi)
	}
	var cond ast.Expr
	if p.cur().Kind != token.Semi {
		cond = p.parseExpr()
	}
	p.expect(token.Semi)
	var post ast.Stmt
	if p.cur().Kind != token.RParen {
		post = p.parseForClause()
	}
	p.expect(token.RParen)
	return &ast.ForStmt{Init: init, Cond: cond, Post: post, Body: p.parseStmt(), Start: start}
}

// parseForClause parses an expression or assignment without the trailing
// semicolon (for-init and for-post positions).
func (p *Parser) parseForClause() ast.Stmt {
	start := p.cur().Pos
	x := p.parseExpr()
	switch p.cur().Kind {
	case token.Assign:
		p.advance()
		return &ast.AssignStmt{Target: x, Op: "=", Value: p.parseExpr(), Start: start}
	case token.PlusEq, token.MinusEq, token.StarEq, token.SlashEq:
		op := p.advance().Text
		return &ast.AssignStmt{Target: x, Op: op, Value: p.parseExpr(), Start: start}
	}
	return &ast.ExprStmt{X: x, Start: start}
}

func (p *Parser) parseTry() ast.Stmt {
	start := p.cur().Pos
	p.expect(token.KwTry)
	t := &ast.TryStmt{Body: p.parseBlock(), Start: start}
	for p.cur().Kind == token.KwCatch {
		cstart := p.cur().Pos
		p.advance()
		p.expect(token.LParen)
		typ, ok := p.parseTypeRef()
		if !ok {
			p.diags.Errorf(p.cur().Pos, "expected exception type in catch")
		}
		name := p.expect(token.Ident).Text
		p.expect(token.RParen)
		t.Catches = append(t.Catches, &ast.CatchClause{Type: typ, Name: name, Body: p.parseBlock(), Start: cstart})
	}
	if p.accept(token.KwFinally) {
		t.Finally = p.parseBlock()
	}
	if len(t.Catches) == 0 && t.Finally == nil {
		p.diags.Errorf(start, "try without catch or finally")
	}
	return t
}

func (p *Parser) parseSwitch() ast.Stmt {
	start := p.cur().Pos
	p.expect(token.KwSwitch)
	p.expect(token.LParen)
	tag := p.parseExpr()
	p.expect(token.RParen)
	p.expect(token.LBrace)
	sw := &ast.SwitchStmt{Tag: tag, Start: start}
	for p.cur().Kind == token.KwCase || p.cur().Kind == token.KwDefault {
		cstart := p.cur().Pos
		c := &ast.SwitchCase{Start: cstart}
		if p.accept(token.KwDefault) {
			c.IsDefault = true
		} else {
			p.expect(token.KwCase)
			c.Value = p.parseExpr()
		}
		p.expect(token.Colon)
		for {
			k := p.cur().Kind
			if k == token.KwCase || k == token.KwDefault || k == token.RBrace || k == token.EOF {
				break
			}
			before := p.pos
			s := p.parseStmt()
			if s != nil {
				c.Stmts = append(c.Stmts, s)
			}
			if p.pos == before {
				p.advance()
			}
		}
		sw.Cases = append(sw.Cases, c)
	}
	p.expect(token.RBrace)
	return sw
}
