package parser

import (
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
)

// FuzzParse asserts two properties on arbitrary inputs: the parser never
// panics, and for inputs it accepts without errors, the canonical printer
// is a fixed point of parse∘print.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"package p; class C { }",
		"package java.net; import java.lang.*; public class S { native int n(String s); }",
		`package p; class C { void m(int a) { if (a > 0) { m(a - 1); } } }`,
		`package p; class C { int f = 3; int m() { return f++; } }`,
		`package p; class C { void m() { try { } catch (E e) { } finally { } } }`,
		`package p; class C { void m(Object o) { X x = (X) o; boolean b = o instanceof X; } }`,
		`package p; class C { void m() { for (int i = 0; i < 3; i++) { continue; } } }`,
		`package p; class C { void m(int k) { switch (k) { case 1: break; default: } } }`,
		"class C { void m() { x = \"unterminated", // broken input
		"@#$%^&*",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		var d1 lang.Diagnostics
		file := ParseFile("fuzz.mj", src, &d1) // must not panic
		if file == nil {
			t.Fatal("nil file")
		}
		if d1.HasErrors() {
			return
		}
		p1 := ast.Print(file)
		var d2 lang.Diagnostics
		f2 := ParseFile("fuzz.mj", p1, &d2)
		if d2.HasErrors() {
			t.Fatalf("canonical form fails to reparse: %v\nsource: %q\nprinted:\n%s", d2.Err(), src, p1)
		}
		if p2 := ast.Print(f2); p1 != p2 {
			t.Fatalf("printer not a fixed point\nsource: %q\n--- p1 ---\n%s\n--- p2 ---\n%s", src, p1, p2)
		}
	})
}
