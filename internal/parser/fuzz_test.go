package parser_test

import (
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
	"policyoracle/internal/oracle"
	"policyoracle/internal/parser"
)

// FuzzParser asserts the whole frontend on arbitrary inputs: the parser
// never panics and stamps its diagnostics with line:col positions; for
// inputs it accepts, the canonical printer is a fixed point of
// parse∘print; and the rest of the frontend — type building and IR
// lowering, driven through oracle.LoadLibrary, which runs them even on
// error-laden ASTs — returns positioned errors rather than panicking.
// This test lives outside package parser so it can pull in the oracle
// without an import cycle.
func FuzzParser(f *testing.F) {
	seeds := []string{
		"",
		"package p; class C { }",
		"package java.net; import java.lang.*; public class S { native int n(String s); }",
		`package p; class C { void m(int a) { if (a > 0) { m(a - 1); } } }`,
		`package p; class C { int f = 3; int m() { return f++; } }`,
		`package p; class C { void m() { try { } catch (E e) { } finally { } } }`,
		`package p; class C { void m(Object o) { X x = (X) o; boolean b = o instanceof X; } }`,
		`package p; class C { void m() { for (int i = 0; i < 3; i++) { continue; } } }`,
		`package p; class C { void m(int k) { switch (k) { case 1: break; default: } } }`,
		`package p; interface I { int m(); } class C extends D implements I { public int m() { return 1; } }`,
		`package p; public class C { public void run() { synchronized (this) { throw new E(); } } }`,
		"class C { void m() { x = \"unterminated", // broken input
		"@#$%^&*",
		"class C extends C { }", // inheritance cycle
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		var d1 lang.Diagnostics
		file := parser.ParseFile("fuzz.mj", src, &d1) // must not panic
		if file == nil {
			t.Fatal("nil file")
		}
		for _, diag := range d1.All() {
			if !diag.Pos.IsValid() || diag.Pos.Col < 1 {
				t.Errorf("diagnostic without line:col position: %v", diag)
			}
		}
		// The typer and lowerer see the AST whether or not the parse was
		// clean; neither may panic, and load errors must be positioned.
		if _, err := oracle.LoadLibrary("fuzz", map[string]string{"fuzz.mj": src}); err != nil {
			_ = err.Error()
		}
		if d1.HasErrors() {
			return
		}
		p1 := ast.Print(file)
		var d2 lang.Diagnostics
		f2 := parser.ParseFile("fuzz.mj", p1, &d2)
		if d2.HasErrors() {
			t.Fatalf("canonical form fails to reparse: %v\nsource: %q\nprinted:\n%s", d2.Err(), src, p1)
		}
		if p2 := ast.Print(f2); p1 != p2 {
			t.Fatalf("printer not a fixed point\nsource: %q\n--- p1 ---\n%s\n--- p2 ---\n%s", src, p1, p2)
		}
	})
}
