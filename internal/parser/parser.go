// Package parser implements a recursive-descent parser for MJ source files.
//
// The grammar is the Java subset described in DESIGN.md: packages, imports,
// class and interface declarations with single inheritance and interface
// implementation, fields, methods (including native and abstract),
// constructors, the full statement repertoire used by Java Class Library
// code (if/else, loops, switch, try/catch/finally, synchronized, throw),
// and an expression grammar with calls, field accesses, allocation, casts,
// instanceof, and short-circuit logical operators.
package parser

import (
	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
	"policyoracle/internal/lexer"
	"policyoracle/internal/token"
)

// Parser parses one MJ source file.
type Parser struct {
	toks  []lexer.Token
	pos   int
	diags *lang.Diagnostics
	file  string
}

// ParseFile parses src as an MJ file. Errors are reported to diags; the
// returned File contains whatever could be parsed.
func ParseFile(file, src string, diags *lang.Diagnostics) *ast.File {
	toks := lexer.Tokenize(file, src, diags)
	p := &Parser{toks: toks, diags: diags, file: file}
	return p.parseFile()
}

func (p *Parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *Parser) peek() lexer.Token { return p.at(1) }

func (p *Parser) at(n int) lexer.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+n]
}

func (p *Parser) advance() lexer.Token {
	t := p.cur()
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k token.Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) lexer.Token {
	if p.cur().Kind == k {
		return p.advance()
	}
	p.diags.Errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return lexer.Token{Kind: k, Pos: p.cur().Pos}
}

// sync skips tokens until one of the kinds (or EOF) is current.
func (p *Parser) sync(kinds ...token.Kind) {
	for p.cur().Kind != token.EOF {
		for _, k := range kinds {
			if p.cur().Kind == k {
				return
			}
		}
		p.advance()
	}
}

func (p *Parser) parseFile() *ast.File {
	f := &ast.File{Start: p.cur().Pos, Name: p.file}
	if p.accept(token.KwPackage) {
		f.Package = p.parseDottedName()
		p.expect(token.Semi)
	}
	for p.cur().Kind == token.KwImport {
		p.advance()
		name := p.parseDottedName()
		if p.accept(token.Dot) {
			p.expect(token.Star)
			name += ".*"
		}
		f.Imports = append(f.Imports, name)
		p.expect(token.Semi)
	}
	for p.cur().Kind != token.EOF {
		td := p.parseTypeDecl()
		if td != nil {
			f.Types = append(f.Types, td)
		} else {
			p.sync(token.KwClass, token.KwInterface, token.KwPublic, token.KwAbstract, token.KwFinal)
			if p.cur().Kind == token.EOF {
				break
			}
			// If sync stopped on a modifier without making progress, bail.
			if p.cur().Kind != token.KwClass && p.cur().Kind != token.KwInterface {
				p.advance()
			}
		}
	}
	return f
}

func (p *Parser) parseDottedName() string {
	name := p.expect(token.Ident).Text
	for p.cur().Kind == token.Dot && p.peek().Kind == token.Ident {
		p.advance()
		name += "." + p.advance().Text
	}
	return name
}

func (p *Parser) parseModifiers() ast.Modifiers {
	var mods ast.Modifiers
	for {
		switch p.cur().Kind {
		case token.KwPublic:
			mods |= ast.ModPublic
		case token.KwProtected:
			mods |= ast.ModProtected
		case token.KwPrivate:
			mods |= ast.ModPrivate
		case token.KwStatic:
			mods |= ast.ModStatic
		case token.KwFinal:
			mods |= ast.ModFinal
		case token.KwAbstract:
			mods |= ast.ModAbstract
		case token.KwNative:
			mods |= ast.ModNative
		case token.KwSynchronized:
			// `synchronized` is a modifier only in member position; the
			// caller distinguishes the synchronized statement.
			mods |= ast.ModSynchronized
		case token.KwTransient:
			mods |= ast.ModTransient
		case token.KwVolatile:
			mods |= ast.ModVolatile
		default:
			return mods
		}
		p.advance()
	}
}

func (p *Parser) parseTypeDecl() *ast.TypeDecl {
	start := p.cur().Pos
	mods := p.parseModifiers()
	td := &ast.TypeDecl{Mods: mods, Start: start}
	switch p.cur().Kind {
	case token.KwClass:
		p.advance()
	case token.KwInterface:
		p.advance()
		td.IsInterface = true
	default:
		p.diags.Errorf(p.cur().Pos, "expected class or interface, found %s", p.cur())
		return nil
	}
	td.Name = p.expect(token.Ident).Text
	if p.accept(token.KwExtends) {
		if td.IsInterface {
			td.Implements = append(td.Implements, p.parseDottedName())
			for p.accept(token.Comma) {
				td.Implements = append(td.Implements, p.parseDottedName())
			}
		} else {
			td.Extends = p.parseDottedName()
		}
	}
	if p.accept(token.KwImplements) {
		td.Implements = append(td.Implements, p.parseDottedName())
		for p.accept(token.Comma) {
			td.Implements = append(td.Implements, p.parseDottedName())
		}
	}
	p.expect(token.LBrace)
	for p.cur().Kind != token.RBrace && p.cur().Kind != token.EOF {
		p.parseMember(td)
	}
	p.expect(token.RBrace)
	return td
}

// parseMember parses one field, method, or constructor declaration into td.
func (p *Parser) parseMember(td *ast.TypeDecl) {
	start := p.cur().Pos
	mods := p.parseModifiers()

	// Constructor: Name '(' where Name matches the class.
	if p.cur().Kind == token.Ident && p.cur().Text == td.Name && p.peek().Kind == token.LParen {
		m := &ast.MethodDecl{Mods: mods, Name: td.Name, IsCtor: true, Start: start}
		p.advance() // name
		m.Params = p.parseParams()
		p.parseThrows(m)
		if p.cur().Kind == token.LBrace {
			m.Body = p.parseBlock()
		} else {
			p.expect(token.Semi)
		}
		td.Methods = append(td.Methods, m)
		return
	}

	typ, ok := p.parseTypeRef()
	if !ok {
		p.diags.Errorf(p.cur().Pos, "expected member declaration, found %s", p.cur())
		p.sync(token.Semi, token.RBrace)
		p.accept(token.Semi)
		return
	}
	name := p.expect(token.Ident).Text

	if p.cur().Kind == token.LParen {
		m := &ast.MethodDecl{Mods: mods, Ret: typ, Name: name, Start: start}
		m.Params = p.parseParams()
		p.parseThrows(m)
		if p.cur().Kind == token.LBrace {
			if mods.Has(ast.ModNative) || mods.Has(ast.ModAbstract) {
				p.diags.Errorf(start, "%s method %s must not have a body", mods, name)
			}
			m.Body = p.parseBlock()
		} else {
			p.expect(token.Semi)
			if !mods.Has(ast.ModNative) && !mods.Has(ast.ModAbstract) && !td.IsInterface {
				p.diags.Errorf(start, "method %s without body must be native or abstract", name)
			}
		}
		td.Methods = append(td.Methods, m)
		return
	}

	// Field declaration, possibly with multiple declarators.
	for {
		fd := &ast.FieldDecl{Mods: mods, Type: typ, Name: name, Start: start}
		if p.accept(token.Assign) {
			fd.Init = p.parseExpr()
		}
		td.Fields = append(td.Fields, fd)
		if !p.accept(token.Comma) {
			break
		}
		name = p.expect(token.Ident).Text
	}
	p.expect(token.Semi)
}

func (p *Parser) parseThrows(m *ast.MethodDecl) {
	if p.accept(token.KwThrows) {
		m.Throws = append(m.Throws, p.parseDottedName())
		for p.accept(token.Comma) {
			m.Throws = append(m.Throws, p.parseDottedName())
		}
	}
}

func (p *Parser) parseParams() []ast.Param {
	p.expect(token.LParen)
	var params []ast.Param
	for p.cur().Kind != token.RParen && p.cur().Kind != token.EOF {
		typ, ok := p.parseTypeRef()
		if !ok {
			p.diags.Errorf(p.cur().Pos, "expected parameter type, found %s", p.cur())
			p.sync(token.RParen, token.Comma, token.LBrace, token.RBrace, token.Semi)
			if p.cur().Kind != token.RParen && p.cur().Kind != token.Comma {
				break
			}
		} else {
			name := p.expect(token.Ident).Text
			for p.accept(token.LBracket) { // C-style trailing dims
				p.expect(token.RBracket)
				typ.Dims++
			}
			params = append(params, ast.Param{Type: typ, Name: name})
		}
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RParen)
	return params
}

// parseTypeRef parses a type reference if one is present.
func (p *Parser) parseTypeRef() (ast.TypeRef, bool) {
	var t ast.TypeRef
	k := p.cur().Kind
	switch {
	case k.IsPrimitiveType():
		t.Name = p.advance().Text
	case k == token.Ident:
		t.Name = p.parseDottedName()
	default:
		return t, false
	}
	for p.cur().Kind == token.LBracket && p.peek().Kind == token.RBracket {
		p.advance()
		p.advance()
		t.Dims++
	}
	return t, true
}
