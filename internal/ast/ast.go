// Package ast defines the abstract syntax tree for MJ, the Java-subset
// language analyzed by the security policy oracle.
package ast

import "policyoracle/internal/lang"

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() lang.Pos
}

// File is one MJ source file: a package declaration, imports, and types.
type File struct {
	Package string // dotted package name, e.g. "java.net"
	Imports []string
	Types   []*TypeDecl
	Start   lang.Pos
	Name    string // source file name
}

func (f *File) Pos() lang.Pos { return f.Start }

// Modifiers is a bit set of declaration modifiers.
type Modifiers uint16

// Modifier bits.
const (
	ModPublic Modifiers = 1 << iota
	ModProtected
	ModPrivate
	ModStatic
	ModFinal
	ModAbstract
	ModNative
	ModSynchronized
	ModTransient
	ModVolatile
)

// Has reports whether all bits in m are set.
func (ms Modifiers) Has(m Modifiers) bool { return ms&m == m }

// String renders the modifiers in canonical order.
func (ms Modifiers) String() string {
	var s string
	add := func(m Modifiers, name string) {
		if ms.Has(m) {
			if s != "" {
				s += " "
			}
			s += name
		}
	}
	add(ModPublic, "public")
	add(ModProtected, "protected")
	add(ModPrivate, "private")
	add(ModStatic, "static")
	add(ModFinal, "final")
	add(ModAbstract, "abstract")
	add(ModNative, "native")
	add(ModSynchronized, "synchronized")
	add(ModTransient, "transient")
	add(ModVolatile, "volatile")
	return s
}

// TypeDecl is a class or interface declaration.
type TypeDecl struct {
	Mods        Modifiers
	IsInterface bool
	Name        string
	Extends     string   // superclass (classes) or "" for none
	Implements  []string // implemented interfaces; for interfaces, extended interfaces
	Fields      []*FieldDecl
	Methods     []*MethodDecl
	Start       lang.Pos
}

func (d *TypeDecl) Pos() lang.Pos { return d.Start }

// FieldDecl declares one field (multi-declarator statements are split by
// the parser into one FieldDecl per name).
type FieldDecl struct {
	Mods  Modifiers
	Type  TypeRef
	Name  string
	Init  Expr // may be nil
	Start lang.Pos
}

func (d *FieldDecl) Pos() lang.Pos { return d.Start }

// MethodDecl declares a method or constructor. Constructors have
// IsCtor==true and an empty return type.
type MethodDecl struct {
	Mods   Modifiers
	Ret    TypeRef // zero TypeRef (Name=="") for constructors
	Name   string
	Params []Param
	Throws []string
	Body   *Block // nil for native and abstract methods
	IsCtor bool
	Start  lang.Pos
}

func (d *MethodDecl) Pos() lang.Pos { return d.Start }

// Param is one formal parameter.
type Param struct {
	Type TypeRef
	Name string
}

// TypeRef names a type in source: a primitive, or a possibly-qualified
// class name, with an array dimension count.
type TypeRef struct {
	Name string // "int", "boolean", "void", or class name possibly dotted
	Dims int    // number of [] suffixes
}

// IsVoid reports whether the reference is the void type.
func (t TypeRef) IsVoid() bool { return t.Name == "void" && t.Dims == 0 }

// String renders the type reference as source text.
func (t TypeRef) String() string {
	s := t.Name
	for i := 0; i < t.Dims; i++ {
		s += "[]"
	}
	return s
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a { ... } statement list.
type Block struct {
	Stmts []Stmt
	Start lang.Pos
}

// LocalVarDecl declares one local variable, optionally initialized.
type LocalVarDecl struct {
	Type  TypeRef
	Name  string
	Init  Expr // may be nil
	Start lang.Pos
}

// ExprStmt evaluates an expression for effect (method call, assignment,
// increment).
type ExprStmt struct {
	X     Expr
	Start lang.Pos
}

// AssignStmt stores Value into Target (a VarRef, FieldAccess, or IndexExpr).
// Op is "=", "+=", "-=", "*=", or "/=".
type AssignStmt struct {
	Target Expr
	Op     string
	Value  Expr
	Start  lang.Pos
}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
	Start lang.Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond  Expr
	Body  Stmt
	Start lang.Pos
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	Body  Stmt
	Cond  Expr
	Start lang.Pos
}

// ForStmt is a C-style for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	Init  Stmt // LocalVarDecl, AssignStmt or ExprStmt
	Cond  Expr
	Post  Stmt
	Body  Stmt
	Start lang.Pos
}

// ReturnStmt returns from the enclosing method.
type ReturnStmt struct {
	Value Expr // may be nil
	Start lang.Pos
}

// ThrowStmt throws an exception value.
type ThrowStmt struct {
	Value Expr
	Start lang.Pos
}

// BreakStmt exits the innermost loop or switch.
type BreakStmt struct {
	Start lang.Pos
}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct {
	Start lang.Pos
}

// SyncStmt is synchronized (lock) { body }.
type SyncStmt struct {
	Lock  Expr
	Body  *Block
	Start lang.Pos
}

// TryStmt is try/catch/finally. The analysis treats catch blocks as
// alternative successors of the try body (conservative join).
type TryStmt struct {
	Body    *Block
	Catches []*CatchClause
	Finally *Block // may be nil
	Start   lang.Pos
}

// CatchClause is one catch (Type name) { ... } handler.
type CatchClause struct {
	Type  TypeRef
	Name  string
	Body  *Block
	Start lang.Pos
}

// SwitchStmt is a switch over an int/char expression.
type SwitchStmt struct {
	Tag   Expr
	Cases []*SwitchCase
	Start lang.Pos
}

// SwitchCase is one case (or default when IsDefault) arm. Fallthrough
// follows Java semantics: execution continues into the next arm unless a
// break terminates it.
type SwitchCase struct {
	IsDefault bool
	Value     Expr // constant expression; nil for default
	Stmts     []Stmt
	Start     lang.Pos
}

func (s *Block) Pos() lang.Pos        { return s.Start }
func (s *LocalVarDecl) Pos() lang.Pos { return s.Start }
func (s *ExprStmt) Pos() lang.Pos     { return s.Start }
func (s *AssignStmt) Pos() lang.Pos   { return s.Start }
func (s *IfStmt) Pos() lang.Pos       { return s.Start }
func (s *WhileStmt) Pos() lang.Pos    { return s.Start }
func (s *DoWhileStmt) Pos() lang.Pos  { return s.Start }
func (s *ForStmt) Pos() lang.Pos      { return s.Start }
func (s *ReturnStmt) Pos() lang.Pos   { return s.Start }
func (s *ThrowStmt) Pos() lang.Pos    { return s.Start }
func (s *BreakStmt) Pos() lang.Pos    { return s.Start }
func (s *ContinueStmt) Pos() lang.Pos { return s.Start }
func (s *SyncStmt) Pos() lang.Pos     { return s.Start }
func (s *TryStmt) Pos() lang.Pos      { return s.Start }
func (s *CatchClause) Pos() lang.Pos  { return s.Start }
func (s *SwitchStmt) Pos() lang.Pos   { return s.Start }
func (s *SwitchCase) Pos() lang.Pos   { return s.Start }

func (*Block) stmtNode()        {}
func (*LocalVarDecl) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*ThrowStmt) stmtNode()    {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*SyncStmt) stmtNode()     {}
func (*TryStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Literal kinds.
type LitKind int

// Literal kind values.
const (
	LitInt LitKind = iota
	LitString
	LitChar
	LitBool
	LitNull
)

// Literal is a constant literal.
type Literal struct {
	Kind  LitKind
	Int   int64  // LitInt, LitChar
	Str   string // LitString
	Bool  bool   // LitBool
	Start lang.Pos
}

// VarRef names a local variable, parameter, `this`, or — before name
// resolution — a field or class referenced by simple name.
type VarRef struct {
	Name  string
	Start lang.Pos
}

// FieldAccess is X.Name; X may also denote a package/class prefix, which
// name resolution disambiguates.
type FieldAccess struct {
	X     Expr
	Name  string
	Start lang.Pos
}

// IndexExpr is X[Index].
type IndexExpr struct {
	X     Expr
	Index Expr
	Start lang.Pos
}

// CallExpr is a method invocation. Recv is nil for unqualified calls
// (implicit this or static-in-class); for `this(...)` / `super(...)`
// constructor calls Name is "this" / "super".
type CallExpr struct {
	Recv  Expr // nil, or receiver/qualifier expression
	Name  string
	Args  []Expr
	Start lang.Pos
}

// NewExpr is `new Type(args)`.
type NewExpr struct {
	Type  TypeRef
	Args  []Expr
	Start lang.Pos
}

// NewArrayExpr is `new Type[len]` (or `new Type[]{...}` with Elems).
type NewArrayExpr struct {
	Type  TypeRef
	Len   Expr // may be nil when Elems given
	Elems []Expr
	Start lang.Pos
}

// UnaryExpr is Op X where Op is "!", "-", or "~".
type UnaryExpr struct {
	Op    string
	X     Expr
	Start lang.Pos
}

// BinaryExpr is X Op Y for arithmetic, comparison, logical and bitwise
// operators (&& and || are represented here and lowered with
// short-circuit control flow).
type BinaryExpr struct {
	Op    string
	X     Expr
	Y     Expr
	Start lang.Pos
}

// CondExpr is Cond ? Then : Else.
type CondExpr struct {
	Cond  Expr
	Then  Expr
	Else  Expr
	Start lang.Pos
}

// CastExpr is (Type) X.
type CastExpr struct {
	Type  TypeRef
	X     Expr
	Start lang.Pos
}

// InstanceOfExpr is X instanceof Type.
type InstanceOfExpr struct {
	X     Expr
	Type  TypeRef
	Start lang.Pos
}

// IncDecExpr is X++ / X-- / ++X / --X used as an expression statement.
type IncDecExpr struct {
	X     Expr
	Op    string // "++" or "--"
	Start lang.Pos
}

func (e *Literal) Pos() lang.Pos        { return e.Start }
func (e *VarRef) Pos() lang.Pos         { return e.Start }
func (e *FieldAccess) Pos() lang.Pos    { return e.Start }
func (e *IndexExpr) Pos() lang.Pos      { return e.Start }
func (e *CallExpr) Pos() lang.Pos       { return e.Start }
func (e *NewExpr) Pos() lang.Pos        { return e.Start }
func (e *NewArrayExpr) Pos() lang.Pos   { return e.Start }
func (e *UnaryExpr) Pos() lang.Pos      { return e.Start }
func (e *BinaryExpr) Pos() lang.Pos     { return e.Start }
func (e *CondExpr) Pos() lang.Pos       { return e.Start }
func (e *CastExpr) Pos() lang.Pos       { return e.Start }
func (e *InstanceOfExpr) Pos() lang.Pos { return e.Start }
func (e *IncDecExpr) Pos() lang.Pos     { return e.Start }

func (*Literal) exprNode()        {}
func (*VarRef) exprNode()         {}
func (*FieldAccess) exprNode()    {}
func (*IndexExpr) exprNode()      {}
func (*CallExpr) exprNode()       {}
func (*NewExpr) exprNode()        {}
func (*NewArrayExpr) exprNode()   {}
func (*UnaryExpr) exprNode()      {}
func (*BinaryExpr) exprNode()     {}
func (*CondExpr) exprNode()       {}
func (*CastExpr) exprNode()       {}
func (*InstanceOfExpr) exprNode() {}
func (*IncDecExpr) exprNode()     {}
