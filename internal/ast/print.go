package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a File as canonical MJ source. Parsing the output yields a
// structurally identical tree (see the roundtrip tests), which makes the
// printer usable for corpus dumping, golden tests, and debugging.
func Print(f *File) string {
	p := &printer{}
	if f.Package != "" {
		p.linef("package %s;", f.Package)
		p.blank()
	}
	for _, imp := range f.Imports {
		p.linef("import %s;", imp)
	}
	if len(f.Imports) > 0 {
		p.blank()
	}
	for i, td := range f.Types {
		if i > 0 {
			p.blank()
		}
		p.typeDecl(td)
	}
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) linef(format string, args ...any) {
	p.sb.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) blank() { p.sb.WriteByte('\n') }

func mods(m Modifiers) string {
	s := m.String()
	if s != "" {
		s += " "
	}
	return s
}

func (p *printer) typeDecl(td *TypeDecl) {
	kw := "class"
	if td.IsInterface {
		kw = "interface"
	}
	head := fmt.Sprintf("%s%s %s", mods(td.Mods), kw, td.Name)
	if td.Extends != "" {
		head += " extends " + td.Extends
	}
	if len(td.Implements) > 0 {
		joiner := " implements "
		if td.IsInterface {
			joiner = " extends "
		}
		head += joiner + strings.Join(td.Implements, ", ")
	}
	p.linef("%s {", head)
	p.indent++
	for _, fd := range td.Fields {
		if fd.Init != nil {
			p.linef("%s%s %s = %s;", mods(fd.Mods), fd.Type, fd.Name, ExprString(fd.Init))
		} else {
			p.linef("%s%s %s;", mods(fd.Mods), fd.Type, fd.Name)
		}
	}
	for _, md := range td.Methods {
		p.methodDecl(md)
	}
	p.indent--
	p.linef("}")
}

func (p *printer) methodDecl(md *MethodDecl) {
	var params []string
	for _, prm := range md.Params {
		params = append(params, prm.Type.String()+" "+prm.Name)
	}
	var head string
	if md.IsCtor {
		head = fmt.Sprintf("%s%s(%s)", mods(md.Mods), md.Name, strings.Join(params, ", "))
	} else {
		head = fmt.Sprintf("%s%s %s(%s)", mods(md.Mods), md.Ret, md.Name, strings.Join(params, ", "))
	}
	if len(md.Throws) > 0 {
		head += " throws " + strings.Join(md.Throws, ", ")
	}
	if md.Body == nil {
		p.linef("%s;", head)
		return
	}
	p.linef("%s {", head)
	p.indent++
	for _, s := range md.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.linef("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.linef("{")
		p.indent++
		for _, st := range s.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.linef("}")
	case *LocalVarDecl:
		if s.Init != nil {
			p.linef("%s %s = %s;", s.Type, s.Name, ExprString(s.Init))
		} else {
			p.linef("%s %s;", s.Type, s.Name)
		}
	case *ExprStmt:
		p.linef("%s;", ExprString(s.X))
	case *AssignStmt:
		p.linef("%s %s %s;", ExprString(s.Target), s.Op, ExprString(s.Value))
	case *IfStmt:
		p.linef("if (%s) {", ExprString(s.Cond))
		p.indent++
		p.stmtBody(s.Then)
		p.indent--
		if s.Else != nil {
			p.linef("} else {")
			p.indent++
			p.stmtBody(s.Else)
			p.indent--
		}
		p.linef("}")
	case *WhileStmt:
		p.linef("while (%s) {", ExprString(s.Cond))
		p.indent++
		p.stmtBody(s.Body)
		p.indent--
		p.linef("}")
	case *DoWhileStmt:
		p.linef("do {")
		p.indent++
		p.stmtBody(s.Body)
		p.indent--
		p.linef("} while (%s);", ExprString(s.Cond))
	case *ForStmt:
		p.linef("for (%s; %s; %s) {", forClause(s.Init), exprOrEmpty(s.Cond), forClause(s.Post))
		p.indent++
		p.stmtBody(s.Body)
		p.indent--
		p.linef("}")
	case *ReturnStmt:
		if s.Value != nil {
			p.linef("return %s;", ExprString(s.Value))
		} else {
			p.linef("return;")
		}
	case *ThrowStmt:
		p.linef("throw %s;", ExprString(s.Value))
	case *BreakStmt:
		p.linef("break;")
	case *ContinueStmt:
		p.linef("continue;")
	case *SyncStmt:
		p.linef("synchronized (%s) {", ExprString(s.Lock))
		p.indent++
		for _, st := range s.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.linef("}")
	case *TryStmt:
		p.linef("try {")
		p.indent++
		for _, st := range s.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		for _, cc := range s.Catches {
			p.linef("} catch (%s %s) {", cc.Type, cc.Name)
			p.indent++
			for _, st := range cc.Body.Stmts {
				p.stmt(st)
			}
			p.indent--
		}
		if s.Finally != nil {
			p.linef("} finally {")
			p.indent++
			for _, st := range s.Finally.Stmts {
				p.stmt(st)
			}
			p.indent--
		}
		p.linef("}")
	case *SwitchStmt:
		p.linef("switch (%s) {", ExprString(s.Tag))
		for _, c := range s.Cases {
			if c.IsDefault {
				p.linef("default:")
			} else {
				p.linef("case %s:", ExprString(c.Value))
			}
			p.indent++
			for _, st := range c.Stmts {
				p.stmt(st)
			}
			p.indent--
		}
		p.linef("}")
	default:
		p.linef("/* unprintable %T */;", s)
	}
}

// stmtBody prints the body of a control statement, flattening a Block so
// the roundtrip does not accumulate nesting.
func (p *printer) stmtBody(s Stmt) {
	if b, ok := s.(*Block); ok {
		for _, st := range b.Stmts {
			p.stmt(st)
		}
		return
	}
	p.stmt(s)
}

// forClause renders a for-init or for-post clause without a trailing
// semicolon.
func forClause(s Stmt) string {
	switch s := s.(type) {
	case nil:
		return ""
	case *LocalVarDecl:
		if s.Init != nil {
			return fmt.Sprintf("%s %s = %s", s.Type, s.Name, ExprString(s.Init))
		}
		return fmt.Sprintf("%s %s", s.Type, s.Name)
	case *AssignStmt:
		return fmt.Sprintf("%s %s %s", ExprString(s.Target), s.Op, ExprString(s.Value))
	case *ExprStmt:
		return ExprString(s.X)
	case *Block:
		if len(s.Stmts) == 0 {
			return ""
		}
	}
	return ""
}

func exprOrEmpty(e Expr) string {
	if e == nil {
		return ""
	}
	return ExprString(e)
}

// ExprString renders an expression as source text, fully parenthesizing
// nested binary operations so precedence survives the roundtrip.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *Literal:
		switch e.Kind {
		case LitInt:
			return strconv.FormatInt(e.Int, 10)
		case LitChar:
			return fmt.Sprintf("'%s'", escapeChar(byte(e.Int)))
		case LitString:
			return strconv.Quote(e.Str)
		case LitBool:
			return strconv.FormatBool(e.Bool)
		case LitNull:
			return "null"
		}
	case *VarRef:
		return e.Name
	case *FieldAccess:
		return ExprString(e.X) + "." + e.Name
	case *IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *CallExpr:
		args := exprList(e.Args)
		if e.Recv == nil {
			return e.Name + "(" + args + ")"
		}
		return ExprString(e.Recv) + "." + e.Name + "(" + args + ")"
	case *NewExpr:
		return "new " + e.Type.String() + "(" + exprList(e.Args) + ")"
	case *NewArrayExpr:
		base := e.Type
		base.Dims = 0
		if len(e.Elems) > 0 {
			return "new " + base.String() + "[] {" + exprList(e.Elems) + "}"
		}
		return "new " + base.String() + "[" + exprOrEmpty(e.Len) + "]" + strings.Repeat("[]", e.Type.Dims)
	case *UnaryExpr:
		return e.Op + parenthesize(e.X)
	case *BinaryExpr:
		return "(" + ExprString(e.X) + " " + e.Op + " " + ExprString(e.Y) + ")"
	case *CondExpr:
		return "(" + ExprString(e.Cond) + " ? " + ExprString(e.Then) + " : " + ExprString(e.Else) + ")"
	case *CastExpr:
		return "((" + e.Type.String() + ") " + parenthesize(e.X) + ")"
	case *InstanceOfExpr:
		return "(" + ExprString(e.X) + " instanceof " + e.Type.String() + ")"
	case *IncDecExpr:
		return ExprString(e.X) + e.Op
	}
	return fmt.Sprintf("/*%T*/null", e)
}

// parenthesize wraps operands whose rendering could fuse with a prefix
// operator or cast.
func parenthesize(e Expr) string {
	switch e.(type) {
	case *BinaryExpr, *CondExpr, *CastExpr, *InstanceOfExpr:
		return ExprString(e) // already parenthesized
	case *UnaryExpr:
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = ExprString(e)
	}
	return strings.Join(parts, ", ")
}

func escapeChar(c byte) string {
	switch c {
	case '\n':
		return `\n`
	case '\t':
		return `\t`
	case '\r':
		return `\r`
	case 0:
		return `\0`
	case '\'':
		return `\'`
	case '\\':
		return `\\`
	}
	return string(c)
}
