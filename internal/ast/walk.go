package ast

// Inspect traverses the tree rooted at n in depth-first order, calling f
// for every node. If f returns false for a node, its children are not
// visited. Nil children are skipped. All AST nodes are pointers, so
// visitors may mutate node fields in place; Inspect is the foundation of
// the metamorphic mutators, which rewrite trees between parse and print.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *File:
		for _, td := range n.Types {
			Inspect(td, f)
		}
	case *TypeDecl:
		for _, fd := range n.Fields {
			Inspect(fd, f)
		}
		for _, md := range n.Methods {
			Inspect(md, f)
		}
	case *FieldDecl:
		inspectExpr(n.Init, f)
	case *MethodDecl:
		if n.Body != nil {
			Inspect(n.Body, f)
		}
	case *Block:
		for _, s := range n.Stmts {
			Inspect(s, f)
		}
	case *LocalVarDecl:
		inspectExpr(n.Init, f)
	case *ExprStmt:
		inspectExpr(n.X, f)
	case *AssignStmt:
		inspectExpr(n.Target, f)
		inspectExpr(n.Value, f)
	case *IfStmt:
		inspectExpr(n.Cond, f)
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *WhileStmt:
		inspectExpr(n.Cond, f)
		Inspect(n.Body, f)
	case *DoWhileStmt:
		Inspect(n.Body, f)
		inspectExpr(n.Cond, f)
	case *ForStmt:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
		inspectExpr(n.Cond, f)
		if n.Post != nil {
			Inspect(n.Post, f)
		}
		Inspect(n.Body, f)
	case *ReturnStmt:
		inspectExpr(n.Value, f)
	case *ThrowStmt:
		inspectExpr(n.Value, f)
	case *SyncStmt:
		inspectExpr(n.Lock, f)
		Inspect(n.Body, f)
	case *TryStmt:
		Inspect(n.Body, f)
		for _, cc := range n.Catches {
			Inspect(cc, f)
		}
		if n.Finally != nil {
			Inspect(n.Finally, f)
		}
	case *CatchClause:
		Inspect(n.Body, f)
	case *SwitchStmt:
		inspectExpr(n.Tag, f)
		for _, c := range n.Cases {
			Inspect(c, f)
		}
	case *SwitchCase:
		inspectExpr(n.Value, f)
		for _, s := range n.Stmts {
			Inspect(s, f)
		}
	case *BreakStmt, *ContinueStmt:
	case *Literal, *VarRef:
	case *FieldAccess:
		inspectExpr(n.X, f)
	case *IndexExpr:
		inspectExpr(n.X, f)
		inspectExpr(n.Index, f)
	case *CallExpr:
		inspectExpr(n.Recv, f)
		for _, a := range n.Args {
			inspectExpr(a, f)
		}
	case *NewExpr:
		for _, a := range n.Args {
			inspectExpr(a, f)
		}
	case *NewArrayExpr:
		inspectExpr(n.Len, f)
		for _, a := range n.Elems {
			inspectExpr(a, f)
		}
	case *UnaryExpr:
		inspectExpr(n.X, f)
	case *BinaryExpr:
		inspectExpr(n.X, f)
		inspectExpr(n.Y, f)
	case *CondExpr:
		inspectExpr(n.Cond, f)
		inspectExpr(n.Then, f)
		inspectExpr(n.Else, f)
	case *CastExpr:
		inspectExpr(n.X, f)
	case *InstanceOfExpr:
		inspectExpr(n.X, f)
	case *IncDecExpr:
		inspectExpr(n.X, f)
	}
}

// inspectExpr guards against typed-nil expression fields: an Expr-typed
// field holding a nil pointer must not be visited.
func inspectExpr(e Expr, f func(Node) bool) {
	if e == nil {
		return
	}
	Inspect(e, f)
}

// StmtLists calls f on every statement list in the tree rooted at n —
// method bodies, nested blocks, loop and branch bodies, catch and finally
// clauses, and switch arms. f receives a pointer to the slice so it can
// insert, remove, or reorder statements in place.
func StmtLists(n Node, f func(*[]Stmt)) {
	Inspect(n, func(n Node) bool {
		switch n := n.(type) {
		case *Block:
			f(&n.Stmts)
		case *SwitchCase:
			f(&n.Stmts)
		case *IfStmt:
			// Non-block branches are single statements, not lists.
		}
		return true
	})
}
