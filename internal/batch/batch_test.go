package batch

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestItemValidate(t *testing.T) {
	cases := []struct {
		name string
		item Item
		want string // substring of the error; "" = valid
	}{
		{"extract ok", Item{Op: OpExtract, Fingerprint: "po1-a"}, ""},
		{"diff ok", Item{Op: OpDiff, A: "po1-a", B: "po1-b"}, ""},
		{"extract missing fp", Item{Op: OpExtract}, "missing fingerprint"},
		{"extract with diff fields", Item{Op: OpExtract, Fingerprint: "po1-a", A: "po1-b"}, "carries diff fields"},
		{"diff missing side", Item{Op: OpDiff, A: "po1-a"}, "missing a or b"},
		{"diff with extract field", Item{Op: OpDiff, A: "po1-a", B: "po1-b", Fingerprint: "po1-c"}, "carries extract field"},
		{"unknown op", Item{Op: "explode"}, "unknown op"},
		{"empty op", Item{}, "unknown op"},
	}
	for _, tc := range cases {
		err := tc.item.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestItemRouteKey(t *testing.T) {
	if got := (Item{Op: OpExtract, Fingerprint: "po1-x"}).RouteKey(); got != "po1-x" {
		t.Errorf("extract route key = %q", got)
	}
	// Diffs route by A: the diff runs where A's blob lives.
	if got := (Item{Op: OpDiff, A: "po1-a", B: "po1-b"}).RouteKey(); got != "po1-a" {
		t.Errorf("diff route key = %q", got)
	}
}

// TestResultPayloadRoundTrip pins the byte-identity transport contract:
// payload bytes survive the JSON envelope exactly, including trailing
// newlines and characters an HTML-escaping raw embedding would mangle.
func TestResultPayloadRoundTrip(t *testing.T) {
	payload := []byte("{\n  \"a\": \"<&>\",\n  \"b\": 1\n}\n")
	line, err := json.Marshal(ItemResult{Index: 3, Op: OpDiff, Status: 200, Result: payload})
	if err != nil {
		t.Fatal(err)
	}
	var got ItemResult
	if err := json.Unmarshal(line, &got); err != nil {
		t.Fatal(err)
	}
	if string(got.Result) != string(payload) {
		t.Fatalf("payload mutated in transit:\n%q\n%q", got.Result, payload)
	}
}
