package batch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"policyoracle/internal/ring"
	"policyoracle/internal/telemetry"
)

// Client executes a batch of items against a sharded polorad tier: each
// item is routed to the replica that owns its fingerprint on the
// consistent-hash ring (the same ring the replicas' peer tier uses, so
// most items hit a warm owner), chunked under the server's per-request
// item cap, and executed concurrently. A replica that exhausts its
// retry budget is declared dead and removed from the ring; its pending
// items reroute to the members that inherit its arc. Results come back
// merged in input order.
type Client struct {
	// Members is the replica set, in the exact strings the replicas were
	// started with (polorad -peers): member identity is what the ring
	// hashes, so client and servers must agree on it.
	Members []string
	// Workers bounds concurrent chunk requests (<= 0 means 4).
	Workers int
	// Retries is the per-chunk transport-failure retry budget before the
	// target member is declared dead (<= 0 means 3). Item-level errors
	// (an unknown fingerprint, a domain mismatch) are results, never
	// retried.
	Retries int
	// Backoff is the initial retry delay, doubled per retry
	// (<= 0 means 200ms).
	Backoff time.Duration
	// MaxItems caps items per request, matching the server's documented
	// cap (<= 0 means DefaultMaxItems; larger workloads are chunked).
	MaxItems int
	// HTTP is the client used for requests; nil uses a default with a
	// 5-minute timeout (a batch may extract many blobs on demand).
	HTTP *http.Client
	// Logger receives dropout and retry warnings. Nil discards them.
	Logger *slog.Logger
}

// errFatal wraps a request-level rejection that no retry or reroute can
// fix (a 4xx envelope: the batch itself is malformed or over the cap).
type errFatal struct{ err error }

func (e errFatal) Error() string { return e.err.Error() }
func (e errFatal) Unwrap() error { return e.err }

// Run executes items and returns one ItemResult per item, in input
// order. It fails only when the request itself is invalid or every
// replica is unreachable; per-item failures are carried in the results.
func (c *Client) Run(ctx context.Context, items []Item) ([]ItemResult, error) {
	if len(c.Members) == 0 {
		return nil, errors.New("batch: no replica addresses")
	}
	log := c.Logger
	if log == nil {
		log = telemetry.NopLogger()
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{Timeout: 5 * time.Minute}
	}
	workers := c.Workers
	if workers <= 0 {
		workers = 4
	}
	maxItems := c.MaxItems
	if maxItems <= 0 {
		maxItems = DefaultMaxItems
	}

	results := make([]ItemResult, len(items))
	filled := make([]bool, len(items))
	pending := make([]int, len(items))
	for i := range pending {
		pending[i] = i
	}
	r := ring.New(c.Members, 0)

	// Round loop: route pending items to owners, execute the round's
	// chunks concurrently, shrink the ring by the members that dropped
	// out, reroute what they left behind. A healthy tier finishes in one
	// round; each extra round costs one ring rebuild, bounded by the
	// member count.
	for len(pending) > 0 {
		if r.Len() == 0 {
			return nil, fmt.Errorf("batch: all %d replicas unreachable with %d items unfinished",
				len(c.Members), len(pending))
		}
		byOwner := make(map[string][]int)
		for _, i := range pending {
			owner := r.Owner(items[i].RouteKey())
			byOwner[owner] = append(byOwner[owner], i)
		}
		type chunk struct {
			member  string
			indices []int
		}
		var chunks []chunk
		for member, idxs := range byOwner {
			for len(idxs) > maxItems {
				chunks = append(chunks, chunk{member, idxs[:maxItems]})
				idxs = idxs[maxItems:]
			}
			chunks = append(chunks, chunk{member, idxs})
		}

		var (
			mu    sync.Mutex
			dead  = map[string]bool{}
			fatal error
			sem   = make(chan struct{}, workers)
			wg    sync.WaitGroup
		)
		for _, ch := range chunks {
			wg.Add(1)
			go func(ch chunk) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				mu.Lock()
				skip := dead[ch.member] || fatal != nil
				mu.Unlock()
				if skip {
					return // owner already declared dead this round; reroute next round
				}
				err := c.runChunk(ctx, httpc, ch.member, items, ch.indices, results, filled, &mu)
				if err == nil {
					return
				}
				mu.Lock()
				defer mu.Unlock()
				var fe errFatal
				if errors.As(err, &fe) || ctx.Err() != nil {
					if fatal == nil {
						fatal = err
					}
					return
				}
				dead[ch.member] = true
				log.Warn("batch: replica dropped out, rerouting its items",
					"member", ch.member, "items", len(ch.indices), "err", err)
			}(ch)
		}
		wg.Wait()
		if fatal != nil {
			return nil, fatal
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for m := range dead {
			r = r.Without(m)
		}
		pending = pending[:0]
		for i := range items {
			if !filled[i] {
				pending = append(pending, i)
			}
		}
	}
	return results, nil
}

// runChunk posts one chunk to member with the retry budget, writing the
// streamed results into the shared results slice under mu. A chunk that
// partially streamed before a transport failure keeps what arrived;
// only the unfilled remainder is retried or rerouted.
func (c *Client) runChunk(ctx context.Context, httpc *http.Client, member string,
	items []Item, indices []int, results []ItemResult, filled []bool, mu *sync.Mutex) error {
	retries := c.Retries
	if retries <= 0 {
		retries = 3
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		// Re-chunk to what is still missing: a stream that died half-way
		// already delivered (and recorded) its earlier items.
		mu.Lock()
		todo := indices[:0:0]
		for _, i := range indices {
			if !filled[i] {
				todo = append(todo, i)
			}
		}
		mu.Unlock()
		if len(todo) == 0 {
			return nil
		}
		err = c.postChunk(ctx, httpc, member, items, todo, results, filled, mu)
		if err == nil {
			return nil
		}
		var fe errFatal
		if errors.As(err, &fe) || ctx.Err() != nil || attempt >= retries {
			return err
		}
		if c.Logger != nil {
			c.Logger.Warn("batch: chunk failed, retrying",
				"member", member, "attempt", attempt+1, "backoff", backoff, "err", err)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff *= 2
	}
}

// postChunk performs one POST /v1/batch and drains its NDJSON stream.
func (c *Client) postChunk(ctx context.Context, httpc *http.Client, member string,
	items []Item, indices []int, results []ItemResult, filled []bool, mu *sync.Mutex) error {
	req := Request{Items: make([]Item, len(indices))}
	for k, i := range indices {
		req.Items[k] = items[i]
	}
	body, err := json.Marshal(req)
	if err != nil {
		return errFatal{err}
	}
	base := member
	if !hasURLScheme(base) {
		base = "http://" + base
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return errFatal{err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := httpc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("batch: %s answered %s: %s", member, resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// The request itself was rejected (malformed, over the cap):
			// another replica would reject it identically.
			return errFatal{err}
		}
		return err
	}
	dec := json.NewDecoder(resp.Body)
	got := 0
	for got < len(indices) {
		var res ItemResult
		if err := dec.Decode(&res); err != nil {
			return fmt.Errorf("batch: stream from %s ended after %d of %d items: %w",
				member, got, len(indices), err)
		}
		if res.Index < 0 || res.Index >= len(indices) {
			return errFatal{fmt.Errorf("batch: %s returned out-of-range item index %d", member, res.Index)}
		}
		global := indices[res.Index]
		res.Index = global
		mu.Lock()
		results[global] = res
		filled[global] = true
		mu.Unlock()
		got++
	}
	return nil
}

// hasURLScheme reports whether addr already carries a URL scheme, so
// bare host:port member strings get "http://" prepended.
func hasURLScheme(addr string) bool {
	for i := 0; i < len(addr); i++ {
		switch {
		case addr[i] == ':':
			return i+2 < len(addr) && addr[i+1] == '/' && addr[i+2] == '/'
		case addr[i] == '/' || addr[i] == '.':
			return false
		}
	}
	return false
}
