// Package batch defines the wire format of POST /v1/batch: one request
// carrying a mixed array of extract and diff items, answered as a
// newline-delimited JSON stream of per-item envelopes in input order.
//
// The payload bytes inside each ItemResult are EXACTLY the single-item
// wire formats — an extract item carries the bytes `polora export`
// writes and a diff item the bytes `polora diff -json` prints. They
// travel base64-encoded (Go's []byte JSON encoding) because embedding
// them as raw JSON would let the envelope encoder re-compact and
// HTML-escape them, silently breaking the byte-identity contract the
// oracle's clients rely on.
//
// The package is shared by the server handler and the CLI batch client
// so the two cannot drift.
package batch

import "fmt"

// Item operations.
const (
	// OpExtract serves one fingerprint's policy blob (POST /v1/extract
	// semantics).
	OpExtract = "extract"
	// OpDiff compares two fingerprints (POST /v1/diff semantics).
	OpDiff = "diff"
)

// DefaultMaxItems is the documented per-request item cap enforced by
// the server (and pre-enforced by the client's chunker). A request with
// more items fails whole with code batch_too_large before any item
// runs; clients split large workloads into multiple requests.
const DefaultMaxItems = 256

// Item is one operation in a batch request.
type Item struct {
	// Op is OpExtract or OpDiff.
	Op string `json:"op"`
	// Fingerprint addresses the policy blob of an extract item.
	Fingerprint string `json:"fingerprint,omitempty"`
	// A and B address the compared revisions of a diff item.
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// Domain optionally asserts the check domain, with the semantics of
	// the single-item endpoints.
	Domain string `json:"domain,omitempty"`
}

// Validate reports whether the item is well-formed for its operation.
func (it Item) Validate() error {
	switch it.Op {
	case OpExtract:
		if it.Fingerprint == "" {
			return fmt.Errorf("extract item missing fingerprint")
		}
		if it.A != "" || it.B != "" {
			return fmt.Errorf("extract item carries diff fields a/b")
		}
	case OpDiff:
		if it.A == "" || it.B == "" {
			return fmt.Errorf("diff item missing a or b")
		}
		if it.Fingerprint != "" {
			return fmt.Errorf("diff item carries extract field fingerprint")
		}
	default:
		return fmt.Errorf("unknown op %q (want %q or %q)", it.Op, OpExtract, OpDiff)
	}
	return nil
}

// RouteKey is the fingerprint consistent-hash routing is keyed by: the
// blob an extract serves, or the A side of a diff (the diff runs where
// A's blob lives; B rides along via the peer tier).
func (it Item) RouteKey() string {
	if it.Op == OpDiff {
		return it.A
	}
	return it.Fingerprint
}

// Request is the body of POST /v1/batch.
type Request struct {
	Items []Item `json:"items"`
}

// ItemError mirrors the server's error envelope for one failed item:
// the code field is the same stable Code* vocabulary the single-item
// endpoints use, so a client dispatches identically either way.
type ItemError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
}

// ItemResult is one line of the response stream.
type ItemResult struct {
	// Index is the item's position in Request.Items. The server emits
	// results in index order; a client merging chunks re-keys by it.
	Index int `json:"index"`
	// Op echoes the item's operation.
	Op string `json:"op"`
	// Status is the HTTP status the single-item endpoint would have
	// answered with (200 on success).
	Status int `json:"status"`
	// Result holds the exact single-item wire bytes on success,
	// base64-encoded in transit.
	Result []byte `json:"result,omitempty"`
	// Error carries the failure envelope when Status is not 200.
	Error *ItemError `json:"error,omitempty"`
}
