package cfg

import (
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/ir"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/types"
)

func lowerFunc(t *testing.T, body string) *ir.Func {
	t.Helper()
	src := "package p; class C { int f; void m(boolean a, boolean b, int n) { " + body + " } void g() { } }"
	var diags lang.Diagnostics
	files := []*ast.File{parser.ParseFile("t.mj", src, &diags)}
	tp := types.Build("t", files, &diags)
	p := ir.LowerProgram(tp, &diags)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	for _, m := range tp.Classes["p.C"].Methods {
		if m.Name == "m" {
			return p.FuncOf(m)
		}
	}
	t.Fatal("m not found")
	return nil
}

func TestRPOStartsAtEntryAndCoversAll(t *testing.T) {
	f := lowerFunc(t, `if (a) { g(); } else { g(); } while (b) { g(); } f = 1;`)
	rpo := ReversePostorder(f)
	if len(rpo) != len(f.Blocks) {
		t.Fatalf("rpo covers %d of %d blocks", len(rpo), len(f.Blocks))
	}
	if rpo[0] != f.Blocks[0] {
		t.Error("rpo does not start at entry")
	}
	// Every block appears exactly once.
	seen := map[*ir.Block]bool{}
	for _, b := range rpo {
		if seen[b] {
			t.Fatalf("block b%d appears twice", b.Index)
		}
		seen[b] = true
	}
}

func TestRPOOrdersAcyclicEdgesForward(t *testing.T) {
	f := lowerFunc(t, `if (a) { f = 1; } else { f = 2; } f = 3;`)
	rpo := ReversePostorder(f)
	pos := map[*ir.Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if pos[s] < pos[b] && s != b {
				// Only back edges (loops) may go backwards; this CFG has none.
				t.Errorf("edge b%d->b%d goes backwards in RPO", b.Index, s.Index)
			}
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := lowerFunc(t, `if (a) { f = 1; } else { f = 2; } f = 3;`)
	dom := ComputeDominators(f)
	entry := f.Blocks[0]
	thenB, elseB := entry.Succs[0], entry.Succs[1]
	join := thenB.Succs[0]
	if !dom.Dominates(entry, join) {
		t.Error("entry should dominate join")
	}
	if dom.Dominates(thenB, join) || dom.Dominates(elseB, join) {
		t.Error("branch should not dominate join")
	}
	if dom.Idom(join) != entry {
		t.Errorf("idom(join) = %v", dom.Idom(join))
	}
	if dom.Idom(entry) != nil {
		t.Error("entry has an idom")
	}
	if !dom.Dominates(join, join) {
		t.Error("dominance should be reflexive")
	}
}

func TestDominatorsLoop(t *testing.T) {
	f := lowerFunc(t, `while (b) { g(); } f = 1;`)
	dom := ComputeDominators(f)
	// Find the loop head (If terminator with 2 preds).
	var head *ir.Block
	for _, blk := range f.Blocks {
		if _, ok := blk.Term().(*ir.If); ok && len(blk.Preds) == 2 {
			head = blk
		}
	}
	if head == nil {
		t.Fatalf("no loop head:\n%s", f.Dump())
	}
	// The head dominates the body and the exit.
	for _, s := range head.Succs {
		if !dom.Dominates(head, s) {
			t.Errorf("head does not dominate successor b%d", s.Index)
		}
	}
	if !dom.Dominates(f.Blocks[0], head) {
		t.Error("entry does not dominate loop head")
	}
}

func TestDominanceIsPartialOrder(t *testing.T) {
	f := lowerFunc(t, `
if (a) { if (b) { f = 1; } f = 2; } else { f = 3; }
while (b) { g(); }
f = 4;`)
	dom := ComputeDominators(f)
	for _, x := range f.Blocks {
		for _, y := range f.Blocks {
			// Antisymmetry.
			if x != y && dom.Dominates(x, y) && dom.Dominates(y, x) {
				t.Fatalf("b%d and b%d dominate each other", x.Index, y.Index)
			}
			for _, z := range f.Blocks {
				// Transitivity.
				if dom.Dominates(x, y) && dom.Dominates(y, z) && !dom.Dominates(x, z) {
					t.Fatalf("dominance not transitive: b%d, b%d, b%d", x.Index, y.Index, z.Index)
				}
			}
		}
	}
}

func TestIdomChainReachesEntry(t *testing.T) {
	f := lowerFunc(t, `if (a) { f = 1; } for (int i = 0; i < n; i++) { g(); } f = 2;`)
	dom := ComputeDominators(f)
	entry := f.Blocks[0]
	for _, b := range f.Blocks {
		steps := 0
		for x := b; x != entry; {
			x = dom.Idom(x)
			if x == nil {
				t.Fatalf("idom chain of b%d does not reach entry", b.Index)
			}
			if steps++; steps > len(f.Blocks) {
				t.Fatalf("idom chain of b%d cycles", b.Index)
			}
		}
	}
}
