// Package cfg provides control-flow-graph utilities over the IR: reverse
// postorder and dominator trees (Cooper–Harvey–Kennedy). The CMV baseline
// uses dominance to check complete mediation; the analyses use reverse
// postorder for fast convergence.
package cfg

import "policyoracle/internal/ir"

// ReversePostorder returns the blocks of f in reverse postorder starting
// from the entry block.
func ReversePostorder(f *ir.Func) []*ir.Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	seen := make([]bool, len(f.Blocks))
	var post []*ir.Block
	var walk func(*ir.Block)
	walk = func(b *ir.Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(f.Blocks[0])
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators holds the dominator tree of a function.
type Dominators struct {
	f    *ir.Func
	idom []int // immediate dominator block index; -1 for entry/unreachable
	rpo  []*ir.Block
	num  []int // rpo number per block index
}

// Idom returns the immediate dominator of b, or nil for the entry block.
func (d *Dominators) Idom(b *ir.Block) *ir.Block {
	i := d.idom[b.Index]
	if i < 0 || i == b.Index {
		return nil
	}
	return d.f.Blocks[i]
}

// Dominates reports whether a dominates b (reflexively).
func (d *Dominators) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		i := d.idom[b.Index]
		if i < 0 || i == b.Index {
			return false
		}
		b = d.f.Blocks[i]
	}
}

// ComputeDominators builds the dominator tree of f using the
// Cooper–Harvey–Kennedy iterative algorithm.
func ComputeDominators(f *ir.Func) *Dominators {
	d := &Dominators{f: f, idom: make([]int, len(f.Blocks)), num: make([]int, len(f.Blocks))}
	for i := range d.idom {
		d.idom[i] = -1
		d.num[i] = -1
	}
	d.rpo = ReversePostorder(f)
	for i, b := range d.rpo {
		d.num[b.Index] = i
	}
	if len(d.rpo) == 0 {
		return d
	}
	entry := d.rpo[0]
	d.idom[entry.Index] = entry.Index
	changed := true
	for changed {
		changed = false
		for _, b := range d.rpo[1:] {
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if d.num[p.Index] < 0 || d.idom[p.Index] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom == nil {
				continue
			}
			if d.idom[b.Index] != newIdom.Index {
				d.idom[b.Index] = newIdom.Index
				changed = true
			}
		}
	}
	return d
}

func (d *Dominators) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for d.num[a.Index] > d.num[b.Index] {
			a = d.f.Blocks[d.idom[a.Index]]
		}
		for d.num[b.Index] > d.num[a.Index] {
			b = d.f.Blocks[d.idom[b.Index]]
		}
	}
	return a
}
