package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("po1-%032x", i)
	}
	return out
}

// Ownership is a pure function of the member set: member order, ring
// rebuilds, and repeated lookups all agree.
func TestOwnerDeterministic(t *testing.T) {
	members := []string{"10.0.0.1:8075", "10.0.0.2:8075", "10.0.0.3:8075"}
	shuffled := []string{"10.0.0.3:8075", "10.0.0.1:8075", "10.0.0.2:8075"}
	a, b := New(members, 0), New(shuffled, 0)
	for _, k := range keys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %s differs across member orderings: %q vs %q",
				k, a.Owner(k), b.Owner(k))
		}
		if a.Owner(k) != a.Owner(k) {
			t.Fatalf("owner of %s is not stable", k)
		}
	}
}

// Duplicate and empty members collapse instead of double-weighting.
func TestNewDeduplicates(t *testing.T) {
	r := New([]string{"a", "b", "a", "", "b"}, 8)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members = %v", got)
	}
}

// The distribution bound the design relies on: with DefaultVirtualNodes
// every member's share of a large key population stays within ±35% of
// the uniform share. (The bound is loose enough to be stable across
// hash functions but tight enough to catch a broken vnode projection,
// which lands everything on one member.)
func TestDistributionBounds(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("replica-%d:8075", i)
		}
		r := New(members, 0)
		const total = 20000
		counts := map[string]int{}
		for _, k := range keys(total) {
			counts[r.Owner(k)]++
		}
		mean := float64(total) / float64(n)
		for m, c := range counts {
			if ratio := float64(c) / mean; ratio < 0.65 || ratio > 1.35 {
				t.Errorf("%d members: %s owns %d keys (%.2fx the uniform share)", n, m, c, ratio)
			}
		}
		if len(counts) != n {
			t.Errorf("%d members: only %d received keys", n, len(counts))
		}
	}
}

// Removing a member moves only the keys it owned; every other key keeps
// its owner. This is what keeps the surviving replicas' caches warm
// through a dropout.
func TestWithoutMovesOnlyOrphanedKeys(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	full := New(members, 0)
	reduced := full.Without("c:1")
	if reduced.Len() != 3 {
		t.Fatalf("reduced Len = %d, want 3", reduced.Len())
	}
	moved, orphaned := 0, 0
	for _, k := range keys(5000) {
		before, after := full.Owner(k), reduced.Owner(k)
		if before == "c:1" {
			orphaned++
			if after == "c:1" {
				t.Fatalf("key %s still owned by removed member", k)
			}
			continue
		}
		if before != after {
			moved++
			t.Errorf("key %s moved %q -> %q though its owner survived", k, before, after)
		}
	}
	if orphaned == 0 {
		t.Fatal("no keys were owned by the removed member; test is vacuous")
	}
	if moved > 0 {
		t.Errorf("%d surviving-owner keys moved", moved)
	}
}

// Owners returns distinct members in preference order, starting with
// the owner; asking for more members than exist returns them all.
func TestOwnersPreferenceOrder(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	r := New(members, 0)
	for _, k := range keys(200) {
		all := r.Owners(k, 0)
		if len(all) != 3 {
			t.Fatalf("Owners(%s, 0) = %v, want all 3", k, all)
		}
		if all[0] != r.Owner(k) {
			t.Fatalf("Owners(%s)[0] = %q, Owner = %q", k, all[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range all {
			if seen[m] {
				t.Fatalf("Owners(%s) repeats %q: %v", k, m, all)
			}
			seen[m] = true
		}
		// The fallback order is consistent with the reduced ring: when the
		// owner drops out, the next preferred member is the new owner.
		if next := r.Without(all[0]).Owner(k); next != all[1] {
			t.Fatalf("key %s: Owners[1] = %q but post-dropout owner = %q", k, all[1], next)
		}
	}
}

// Empty and single-member rings behave.
func TestDegenerateRings(t *testing.T) {
	empty := New(nil, 0)
	if got := empty.Owner("k"); got != "" {
		t.Errorf(`empty ring Owner = %q, want ""`, got)
	}
	if got := empty.Owners("k", 2); len(got) != 0 {
		t.Errorf("empty ring Owners = %v", got)
	}
	one := New([]string{"solo:1"}, 4)
	for _, k := range keys(50) {
		if one.Owner(k) != "solo:1" {
			t.Fatalf("single-member ring routed %s elsewhere", k)
		}
	}
	if got := one.Without("solo:1").Owner("k"); got != "" {
		t.Errorf("ring minus its only member still owns: %q", got)
	}
}

func BenchmarkOwner(b *testing.B) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("replica-%d:8075", i)
	}
	r := New(members, 0)
	ks := keys(1024)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(ks[rng.Intn(len(ks))])
	}
}
