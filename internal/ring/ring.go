// Package ring is a consistent-hash ring over polorad replica
// addresses, keyed by store fingerprint. It decides which replica owns
// a content address so that every node of a distributed tier — and the
// batch client routing requests into it — derives the same placement
// from the same member list, with no coordinator.
//
// Each member is projected onto the ring at VirtualNodes pseudo-random
// points (SHA-256 of "member#i"), and a key is owned by the member
// whose first point follows the key's hash clockwise. Virtual nodes
// smooth the per-member share toward 1/N, and removing a member
// (Without, for dropout handling) moves only the keys that member
// owned: everything else keeps its owner, which is what keeps peer
// caches warm across a replica failure.
//
// Members are opaque strings compared byte-for-byte; the ring is
// deterministic in the member *set*, not its order, so differently
// ordered -peers flags on different replicas still agree. Rings are
// immutable and safe for concurrent use.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-member point count used when New is
// given vnodes <= 0. 128 points keep the member shares within a few
// percent of uniform at single-digit member counts (asserted by the
// distribution-bound tests) while keeping a 3-node ring under 400
// points to search.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring.
type Ring struct {
	vnodes  int
	members []string // sorted, deduplicated
	hashes  []uint64 // sorted ring points
	owners  []int    // owners[i] = index into members for hashes[i]
}

// New builds a ring over the given members with vnodes virtual nodes
// per member (<= 0 means DefaultVirtualNodes). Duplicate members are
// collapsed; an empty member list yields an empty ring whose Owner
// returns "".
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		vnodes:  vnodes,
		members: uniq,
		hashes:  make([]uint64, 0, len(uniq)*vnodes),
		owners:  make([]int, 0, len(uniq)*vnodes),
	}
	type point struct {
		hash  uint64
		owner int
	}
	points := make([]point, 0, len(uniq)*vnodes)
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			points = append(points, point{hashString(fmt.Sprintf("%s#%d", m, v)), i})
		}
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		// A hash collision between two members' points is resolved by
		// member order so the ring stays deterministic in the set.
		return r.members[points[a].owner] < r.members[points[b].owner]
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.hash)
		r.owners = append(r.owners, p.owner)
	}
	return r
}

// hashString maps a string to a ring position. SHA-256 (truncated to 64
// bits) rather than a cheaper hash: ring lookups are per-request, not
// per-instruction, and the uniformity is what the distribution bounds
// rely on.
func hashString(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Len reports the number of distinct members.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the sorted member set. Callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member that owns key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.ownerIndices(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return r.members[owners[0]]
}

// Owners returns up to n distinct members in the key's preference
// order: the owner first, then the members whose points follow it
// clockwise. n <= 0 (or n > Len) means every member. This is the
// fallback order a peer fetch walks when the owner has dropped out.
func (r *Ring) Owners(key string, n int) []string {
	owners := r.ownerIndices(key, n)
	out := make([]string, len(owners))
	for i, idx := range owners {
		out[i] = r.members[idx]
	}
	return out
}

// ownerIndices walks the ring clockwise from the key's position,
// collecting up to n distinct member indices.
func (r *Ring) ownerIndices(key string, n int) []int {
	if len(r.hashes) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := hashString(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		owner := r.owners[(start+i)%len(r.hashes)]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}

// Without returns a ring over the member set minus m — the ring a
// client continues on after declaring m dropped. Removing a member
// that was never present returns an equivalent ring.
func (r *Ring) Without(m string) *Ring {
	rest := make([]string, 0, len(r.members))
	for _, mem := range r.members {
		if mem != m {
			rest = append(rest, mem)
		}
	}
	return New(rest, r.vnodes)
}
