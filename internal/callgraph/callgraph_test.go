package callgraph

import (
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/ir"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/types"
)

func build(t testing.TB, src string) (*ir.Program, *Resolver) {
	t.Helper()
	var diags lang.Diagnostics
	files := []*ast.File{parser.ParseFile("t.mj", src, &diags)}
	tp := types.Build("t", files, &diags)
	p := ir.LowerProgram(tp, &diags)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	return p, NewResolver(p)
}

func callsIn(p *ir.Program, class, method string) []*ir.Call {
	var out []*ir.Call
	c := p.Types.Classes[class]
	for _, m := range c.Methods {
		if m.Name != method {
			continue
		}
		f := p.FuncOf(m)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if call, ok := in.(*ir.Call); ok {
					out = append(out, call)
				}
			}
		}
	}
	return out
}

const polySrc = `
package p;
public class Base {
  public int op() { return 0; }
}
public class SubA extends Base {
  public int op() { return 1; }
}
public class SubB extends Base {
  public int op() { return 2; }
}
public class Driver {
  private Base both;
  private Base onlyA;
  public Driver(boolean k) {
    if (k) { both = new SubA(); } else { both = new SubB(); }
    onlyA = new SubA();
  }
  public int callBoth() { return both.op(); }
  public int callA() {
    SubA a = new SubA();
    return a.op();
  }
}
`

func TestPolymorphicSiteUnresolved(t *testing.T) {
	p, r := build(t, polySrc)
	for _, c := range callsIn(p, "p.Driver", "callBoth") {
		if c.Name == "op" {
			if got := r.Resolve(c); got != nil {
				t.Errorf("two-target site resolved to %v", got)
			}
		}
	}
	resolved, unresolved := r.Stats()
	if unresolved == 0 {
		t.Error("no unresolved sites counted")
	}
	_ = resolved
}

func TestMonomorphicStaticTypeResolves(t *testing.T) {
	p, r := build(t, polySrc)
	for _, c := range callsIn(p, "p.Driver", "callA") {
		if c.Name == "op" {
			got := r.Resolve(c)
			if got == nil || got.Class.Simple != "SubA" {
				t.Errorf("SubA receiver resolved to %v", got)
			}
		}
	}
}

func TestPrivateFinalStaticShortcuts(t *testing.T) {
	p, r := build(t, `
package p;
public class C {
  private int secret() { return 1; }
  public final int locked() { return 2; }
  static int util() { return 3; }
  public int drive() {
    int a = secret();
    int b = locked();
    int c = util();
    return a + b + c;
  }
}
public class D extends C { }
`)
	for _, c := range callsIn(p, "p.C", "drive") {
		if got := r.Resolve(c); got == nil {
			t.Errorf("call %s did not resolve", c)
		}
	}
}

func TestAbstractDispatchToUniqueImplementor(t *testing.T) {
	p, r := build(t, `
package p;
public abstract class Shape {
  public abstract int area();
}
public class Square extends Shape {
  public int area() { return 4; }
}
public class App {
  private Shape s;
  public App() { s = new Square(); }
  public int m() { return s.area(); }
}
`)
	for _, c := range callsIn(p, "p.App", "m") {
		if c.Name == "area" {
			got := r.Resolve(c)
			if got == nil || got.Class.Simple != "Square" {
				t.Errorf("abstract dispatch = %v", got)
			}
		}
	}
}

func TestInterfaceDispatchToUniqueAllocated(t *testing.T) {
	p, r := build(t, `
package p;
public interface Action {
  int run();
}
public class OnlyAction implements Action {
  public int run() { return 1; }
}
public class App {
  public int m(Action a) {
    keep(new OnlyAction());
    return a.run();
  }
  void keep(Action a) { }
}
`)
	for _, c := range callsIn(p, "p.App", "m") {
		if c.Name == "run" {
			got := r.Resolve(c)
			if got == nil || got.Class.Simple != "OnlyAction" {
				t.Errorf("interface dispatch = %v", got)
			}
		}
	}
}

func TestResolveOn(t *testing.T) {
	p, r := build(t, polySrc)
	base := p.Types.Classes["p.Base"]
	if got := r.ResolveOn(base, "op", 0); got != nil {
		t.Errorf("ResolveOn two-target = %v", got)
	}
	subA := p.Types.Classes["p.SubA"]
	if got := r.ResolveOn(subA, "op", 0); got == nil || got.Class != subA {
		t.Errorf("ResolveOn SubA = %v", got)
	}
	if got := r.ResolveOn(nil, "op", 0); got != nil {
		t.Errorf("ResolveOn nil = %v", got)
	}
	if got := r.ResolveOn(base, "nope", 0); got != nil {
		t.Errorf("ResolveOn missing method = %v", got)
	}
}

func TestGraphBuild(t *testing.T) {
	p, r := build(t, `
package p;
public class A {
  public void entry() { helper(); helper(); Other.util(); }
  void helper() { leaf(); }
  void leaf() { }
}
public class Other {
  static void util() { }
  static void unreached() { }
}
`)
	var roots []*types.Method
	for _, m := range p.Types.EntryPoints() {
		roots = append(roots, m)
	}
	g := Build(p, r, roots)
	methods, edges := g.Size()
	if methods != 4 { // entry, helper, leaf, util — not unreached
		t.Errorf("methods = %d (%v)", methods, g.Reachable())
	}
	if edges != 3 { // entry->helper (dedup), entry->util, helper->leaf
		t.Errorf("edges = %d", edges)
	}
	for _, m := range g.Reachable() {
		if m.Name == "unreached" {
			t.Error("unreached method in graph")
		}
	}
}

func TestResolutionRateEmpty(t *testing.T) {
	_, r := build(t, `package p; public class C { public void m() { } }`)
	if rate := r.ResolutionRate(); rate != 1 {
		t.Errorf("rate with no calls = %f", rate)
	}
}
