// Package callgraph resolves call sites and builds call graphs rooted at
// API entry points.
//
// Virtual calls are resolved with class-hierarchy analysis narrowed by the
// set of allocated classes (an RTA-style refinement): a call site resolves
// when exactly one concrete target remains, mirroring the paper's use of
// Soot's method resolution (97% of sites resolved; unresolved sites are
// skipped by the analysis, a documented source of false negatives).
package callgraph

import (
	"sort"
	"sync/atomic"

	"policyoracle/internal/ast"
	"policyoracle/internal/ir"
	"policyoracle/internal/types"
)

// Resolver resolves call sites within one program. Resolution is pure
// (the allocated-class set is fixed at construction), and the statistics
// counters are atomic, so a Resolver may be shared by concurrent analyses.
type Resolver struct {
	prog      *ir.Program
	allocated map[*types.Class]bool

	// Stats accumulate over all Resolve calls.
	resolved   atomic.Int64
	unresolved atomic.Int64
}

// NewResolver builds a resolver for p, scanning all method bodies for
// allocation sites.
func NewResolver(p *ir.Program) *Resolver {
	r := &Resolver{prog: p, allocated: make(map[*types.Class]bool)}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if n, ok := in.(*ir.New); ok && n.Class != nil {
					r.allocated[n.Class] = true
				}
			}
		}
	}
	return r
}

// Stats returns the number of resolved and unresolved call sites observed.
func (r *Resolver) Stats() (resolved, unresolved int) {
	return int(r.resolved.Load()), int(r.unresolved.Load())
}

// ResolutionRate returns the fraction of observed call sites that resolved.
func (r *Resolver) ResolutionRate() float64 {
	resolved, unresolved := r.Stats()
	total := resolved + unresolved
	if total == 0 {
		return 1
	}
	return float64(resolved) / float64(total)
}

// Resolve returns the unique target of the call, or nil when the site does
// not resolve to exactly one target. Native targets are returned (they
// have no bodies but are security-sensitive events).
func (r *Resolver) Resolve(c *ir.Call) *types.Method {
	m := r.resolve(c)
	r.RecordOutcome(m != nil)
	return m
}

// RecordOutcome counts one call-site resolution outcome. Callers that
// resolve through ResolveQuiet and deduplicate sites themselves use this
// to keep each site counted exactly once.
func (r *Resolver) RecordOutcome(resolved bool) {
	if resolved {
		r.resolved.Add(1)
	} else {
		r.unresolved.Add(1)
	}
}

// ResolveQuiet is Resolve without statistics accounting (used by
// baselines and diagnostics that should not skew the reported rate).
func (r *Resolver) ResolveQuiet(c *ir.Call) *types.Method { return r.resolve(c) }

func (r *Resolver) resolve(c *ir.Call) *types.Method {
	switch c.Kind {
	case ir.CallStatic, ir.CallSpecial:
		return c.Declared
	}
	decl := c.Declared
	if decl == nil {
		if c.StaticType == nil {
			return nil
		}
		decl = c.StaticType.LookupMethod(c.Name, len(c.Args))
		if decl == nil {
			return nil
		}
	}
	base := c.StaticType
	if base == nil {
		base = decl.Class
	}
	return r.resolveOn(base, decl)
}

// ResolveOn resolves a virtual dispatch of decl's (name, arity) against
// receivers whose static type is base, using the allocated-class set. It
// returns nil when more than one concrete target remains.
func (r *Resolver) ResolveOn(base *types.Class, name string, nargs int) *types.Method {
	if base == nil {
		return nil
	}
	decl := base.LookupMethod(name, nargs)
	if decl == nil {
		return nil
	}
	return r.resolveOn(base, decl)
}

func (r *Resolver) resolveOn(base *types.Class, decl *types.Method) *types.Method {
	// Monomorphic shortcuts: private, final, static receiver class final.
	if decl.Mods.Has(ast.ModPrivate) || decl.Mods.Has(ast.ModFinal) || decl.IsStatic() {
		return decl
	}
	if base.Mods.Has(ast.ModFinal) {
		return dispatch(base, decl)
	}

	// Collect concrete targets over allocated subtypes of the static type.
	targets := map[*types.Method]bool{}
	for _, sub := range base.AllSubtypes() {
		if sub.IsInterface || sub.Mods.Has(ast.ModAbstract) {
			continue
		}
		if !r.allocated[sub] && sub != base {
			continue
		}
		if t := dispatch(sub, decl); t != nil {
			targets[t] = true
		}
	}
	if len(targets) == 0 {
		// No allocated subtype: fall back to the declaration itself when it
		// is concrete (library code reachable only through this type).
		if t := dispatch(base, decl); t != nil {
			return t
		}
		return nil
	}
	if len(targets) == 1 {
		for t := range targets {
			return t
		}
	}
	return nil
}

// dispatch finds the implementation of decl's (name, arity) starting at
// runtime class rc, walking up the superclass chain. Abstract results are
// rejected.
func dispatch(rc *types.Class, decl *types.Method) *types.Method {
	name := decl.Name
	if decl.IsCtor {
		name = "<init>"
	}
	for k := rc; k != nil; k = k.Super {
		for _, m := range k.MethodsNamed(name) {
			if len(m.Params) == len(decl.Params) {
				if m.IsAbstract() {
					return nil
				}
				return m
			}
		}
	}
	return nil
}

// Graph is a call graph rooted at a set of methods.
type Graph struct {
	// Callees maps each method to its resolved callees (deduplicated,
	// deterministic order).
	Callees map[*types.Method][]*types.Method
	// Roots are the graph's entry points.
	Roots []*types.Method
}

// Build constructs the call graph reachable from roots.
func Build(p *ir.Program, r *Resolver, roots []*types.Method) *Graph {
	g := &Graph{Callees: make(map[*types.Method][]*types.Method), Roots: roots}
	var visit func(m *types.Method)
	visit = func(m *types.Method) {
		if _, done := g.Callees[m]; done {
			return
		}
		g.Callees[m] = nil // mark before recursing
		f := p.FuncOf(m)
		if f == nil {
			return
		}
		seen := map[*types.Method]bool{}
		var callees []*types.Method
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				c, ok := in.(*ir.Call)
				if !ok {
					continue
				}
				t := r.ResolveQuiet(c)
				if t == nil || seen[t] {
					continue
				}
				seen[t] = true
				callees = append(callees, t)
			}
		}
		sort.Slice(callees, func(i, j int) bool { return callees[i].ID < callees[j].ID })
		g.Callees[m] = callees
		for _, t := range callees {
			visit(t)
		}
	}
	for _, m := range roots {
		visit(m)
	}
	return g
}

// Reachable returns all methods in the graph, sorted by ID.
func (g *Graph) Reachable() []*types.Method {
	out := make([]*types.Method, 0, len(g.Callees))
	for m := range g.Callees {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Size returns the number of reachable methods and call edges.
func (g *Graph) Size() (methods, edges int) {
	methods = len(g.Callees)
	for _, cs := range g.Callees {
		edges += len(cs)
	}
	return methods, edges
}
