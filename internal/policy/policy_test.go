package policy

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"policyoracle/internal/secmodel"
)

// mask keeps generated uint64s within the 31-check universe.
func mask(v uint64) CheckSet { return CheckSet(v) & Full }

func TestCheckSetBasics(t *testing.T) {
	id, _ := secmodel.CheckByName("checkConnect", 2)
	id2, _ := secmodel.CheckByName("checkAccept", 2)
	s := Empty.With(id)
	if !s.Has(id) || s.Has(id2) {
		t.Errorf("With/Has wrong: %s", s)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	s = s.With(id2)
	if got := s.IDs(); len(got) != 2 {
		t.Errorf("IDs = %v", got)
	}
	if s.Minus(Empty.With(id)) != Empty.With(id2) {
		t.Errorf("Minus wrong")
	}
}

func TestCheckSetStringSorted(t *testing.T) {
	a, _ := secmodel.CheckByName("checkWrite", 1)
	b, _ := secmodel.CheckByName("checkAccept", 2)
	s := Empty.With(a).With(b)
	if got := s.String(); got != "{checkAccept, checkWrite}" {
		t.Errorf("String = %q", got)
	}
	if Empty.String() != "{}" {
		t.Errorf("empty = %q", Empty.String())
	}
}

// Property: union and intersection form a lattice on CheckSet.
func TestCheckSetLatticeLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Commutativity.
	if err := quick.Check(func(x, y uint64) bool {
		a, b := mask(x), mask(y)
		return a.Union(b) == b.Union(a) && a.Intersect(b) == b.Intersect(a)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Associativity.
	if err := quick.Check(func(x, y, z uint64) bool {
		a, b, c := mask(x), mask(y), mask(z)
		return a.Union(b.Union(c)) == a.Union(b).Union(c) &&
			a.Intersect(b.Intersect(c)) == a.Intersect(b).Intersect(c)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Absorption and idempotence.
	if err := quick.Check(func(x, y uint64) bool {
		a, b := mask(x), mask(y)
		return a.Union(a.Intersect(b)) == a &&
			a.Intersect(a.Union(b)) == a &&
			a.Union(a) == a && a.Intersect(a) == a
	}, cfg); err != nil {
		t.Error(err)
	}
	// Identity elements.
	if err := quick.Check(func(x uint64) bool {
		a := mask(x)
		return a.Union(Empty) == a && a.Intersect(Full) == a
	}, cfg); err != nil {
		t.Error(err)
	}
	// Minus definition.
	if err := quick.Check(func(x, y uint64) bool {
		a, b := mask(x), mask(y)
		return a.Minus(b).Intersect(b) == Empty && a.Minus(b).Union(a.Intersect(b)) == a
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestCheckSetLenMatchesIDs(t *testing.T) {
	if err := quick.Check(func(x uint64) bool {
		a := mask(x)
		return a.Len() == len(a.IDs())
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomPathSets builds a normalized PathSets from raw values.
func randomPathSets(vals []uint64) PathSets {
	p := PathSets{}
	for _, v := range vals {
		p.Sets = append(p.Sets, mask(v))
	}
	if len(p.Sets) == 0 {
		p.Sets = []CheckSet{Empty}
	}
	return p.normalize()
}

func TestPathSetsJoinCommutativeAndIdempotent(t *testing.T) {
	gen := func(r *rand.Rand) PathSets {
		n := 1 + r.Intn(6)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = r.Uint64()
		}
		return randomPathSets(vals)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		p, q := gen(r), gen(r)
		if !p.Join(q).Equal(q.Join(p)) {
			t.Fatalf("join not commutative: %s vs %s", p, q)
		}
		if !p.Join(p).Equal(p) {
			t.Fatalf("join not idempotent: %s", p)
		}
	}
}

func TestPathSetsUnionConsistentWithJoin(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		p := randomPathSets([]uint64{r.Uint64(), r.Uint64()})
		q := randomPathSets([]uint64{r.Uint64(), r.Uint64(), r.Uint64()})
		// The flat union of a join equals the union of the flat unions.
		if p.Join(q).Union() != p.Union().Union(q.Union()) {
			t.Fatalf("union mismatch: %s ⋈ %s", p, q)
		}
	}
}

func TestPathSetsAddCheckAddsToEveryAlternative(t *testing.T) {
	id, _ := secmodel.CheckByName("checkExit", 1)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		p := randomPathSets([]uint64{r.Uint64(), r.Uint64(), r.Uint64()})
		q := p.AddCheck(id)
		for _, s := range q.Sets {
			if !s.Has(id) {
				t.Fatalf("alternative %s missing added check in %s", s, q)
			}
		}
	}
}

func TestPathSetsCapCollapses(t *testing.T) {
	var vals []uint64
	for i := 0; i < PathCap+5; i++ {
		vals = append(vals, 1<<uint(i))
	}
	p := randomPathSets(vals)
	if !p.Overflow {
		t.Fatalf("expected overflow, got %s", p)
	}
	if len(p.Sets) != 1 {
		t.Fatalf("expected collapse to union, got %d sets", len(p.Sets))
	}
	want := Empty
	for _, v := range vals {
		want = want.Union(mask(v))
	}
	if p.Sets[0] != want {
		t.Fatalf("collapsed union = %s, want %s", p.Sets[0], want)
	}
}

func TestPathSetsCrossDistributes(t *testing.T) {
	a, _ := secmodel.CheckByName("checkRead", 1)
	b, _ := secmodel.CheckByName("checkWrite", 1)
	c, _ := secmodel.CheckByName("checkExit", 1)
	p := PathSets{Sets: []CheckSet{Empty.With(a), Empty.With(b)}}
	q := PathSets{Sets: []CheckSet{Empty.With(c)}}
	got := p.Cross(q)
	want := []CheckSet{Empty.With(a).With(c), Empty.With(b).With(c)}
	if len(got.Sets) != 2 || got.Sets[0] != want[0] && got.Sets[0] != want[1] {
		t.Errorf("cross = %s", got)
	}
}

func TestPathSetsKeyDistinguishes(t *testing.T) {
	a, _ := secmodel.CheckByName("checkRead", 1)
	p := PathSets{Sets: []CheckSet{Empty}}
	q := PathSets{Sets: []CheckSet{Empty.With(a)}}
	if p.Key() == q.Key() {
		t.Error("distinct path sets share a key")
	}
}

func TestEventPolicyCombination(t *testing.T) {
	read, _ := secmodel.CheckByName("checkRead", 1)
	write, _ := secmodel.CheckByName("checkWrite", 1)
	ep := NewEventPolicy(secmodel.ReturnEvent())
	ep.AddOccurrence(Empty.With(read), Empty.With(read), PathSets{Sets: []CheckSet{Empty.With(read)}})
	ep.AddOccurrence(Empty.With(read).With(write), Empty.With(read).With(write),
		PathSets{Sets: []CheckSet{Empty.With(read).With(write)}})
	// MUST intersects, MAY unions (Section 5).
	if ep.Must != Empty.With(read) {
		t.Errorf("must = %s", ep.Must)
	}
	if ep.May != Empty.With(read).With(write) {
		t.Errorf("may = %s", ep.May)
	}
	if len(ep.Paths.Sets) != 2 {
		t.Errorf("paths = %s", ep.Paths)
	}
}

func TestEventPolicyOrigins(t *testing.T) {
	read, _ := secmodel.CheckByName("checkRead", 1)
	ep := NewEventPolicy(secmodel.ReturnEvent())
	ep.AddOrigin(read, "b.m()")
	ep.AddOrigin(read, "a.m()")
	ep.AddOrigin(read, "b.m()")
	if got := ep.OriginsOf(read); len(got) != 2 || got[0] != "a.m()" {
		t.Errorf("origins = %v", got)
	}
}

func TestProgramPoliciesCounts(t *testing.T) {
	read, _ := secmodel.CheckByName("checkRead", 1)
	pp := NewProgramPolicies("lib")
	e1 := NewEntryPolicy("A.f()")
	e1.EventPolicyFor(secmodel.ReturnEvent()).AddOccurrence(Empty, Empty.With(read), PathEmpty())
	e2 := NewEntryPolicy("A.g()")
	e2.EventPolicyFor(secmodel.ReturnEvent()).AddOccurrence(Empty, Empty, PathEmpty())
	pp.Entries["A.f()"] = e1
	pp.Entries["A.g()"] = e2
	if pp.CountPolicies() != 2 {
		t.Errorf("count = %d", pp.CountPolicies())
	}
	if pp.EntriesWithChecks() != 1 {
		t.Errorf("with checks = %d", pp.EntriesWithChecks())
	}
	if got := pp.SortedEntries(); !reflect.DeepEqual(got, []string{"A.f()", "A.g()"}) {
		t.Errorf("sorted = %v", got)
	}
}
