package policy

import (
	"encoding/json"
	"fmt"

	"policyoracle/internal/secmodel"
)

// The paper's Discussion section proposes that vendors of proprietary
// implementations share *extracted policies* rather than code, and
// difference against them. This file provides the stable serialization
// for that exchange: ExportJSON writes a ProgramPolicies snapshot;
// ImportJSON reads one back into a ProgramPolicies usable by diff.Compare.

// jsonPolicies is the wire form of ProgramPolicies.
type jsonPolicies struct {
	Library string      `json:"library"`
	Version int         `json:"version"`
	Entries []jsonEntry `json:"entries"`
}

type jsonEntry struct {
	Entry  string      `json:"entry"`
	Events []jsonEvent `json:"events"`
}

type jsonEvent struct {
	Kind    int          `json:"kind"`
	Key     string       `json:"key,omitempty"`
	Must    []string     `json:"must"`
	May     []string     `json:"may"`
	Origins []jsonOrigin `json:"origins,omitempty"`
}

type jsonOrigin struct {
	Check   string   `json:"check"`
	Methods []string `json:"methods"`
}

const wireVersion = 1

// checkToWire renders a check as name/arity, the stable wire identity.
// The arity comes straight from the secmodel check table, and an ID
// outside the table is a loud error rather than a "check/-1" token that
// checkFromWire would reject only on re-import.
func checkToWire(id secmodel.CheckID) (string, error) {
	arity := secmodel.CheckArity(id)
	if arity < 0 {
		return "", fmt.Errorf("policy export: check ID %d is not in the security model", int(id))
	}
	return secmodel.CheckName(id) + "/" + fmt.Sprint(arity), nil
}

func checkFromWire(s string) (secmodel.CheckID, error) {
	var name string
	var arity int
	if _, err := fmt.Sscanf(s, "%31s", &name); err != nil {
		return 0, fmt.Errorf("bad check %q", s)
	}
	if i := indexByte(s, '/'); i >= 0 {
		name = s[:i]
		if _, err := fmt.Sscanf(s[i+1:], "%d", &arity); err != nil {
			return 0, fmt.Errorf("bad check arity in %q", s)
		}
	} else {
		return 0, fmt.Errorf("check %q lacks arity", s)
	}
	id, ok := secmodel.CheckByName(name, arity)
	if !ok {
		return 0, fmt.Errorf("unknown check %q", s)
	}
	return id, nil
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

func setToWire(s CheckSet) ([]string, error) {
	out := make([]string, 0, s.Len())
	for _, id := range s.IDs() {
		w, err := checkToWire(id)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func setFromWire(names []string) (CheckSet, error) {
	var s CheckSet
	for _, n := range names {
		id, err := checkFromWire(n)
		if err != nil {
			return 0, err
		}
		s = s.With(id)
	}
	return s, nil
}

// ExportJSON serializes the policies for sharing.
func (pp *ProgramPolicies) ExportJSON() ([]byte, error) {
	out := jsonPolicies{Library: pp.Library, Version: wireVersion}
	for _, sig := range pp.SortedEntries() {
		ep := pp.Entries[sig]
		je := jsonEntry{Entry: sig}
		for _, ev := range ep.SortedEvents() {
			evp := ep.Events[ev]
			must, err := setToWire(evp.Must)
			if err != nil {
				return nil, err
			}
			may, err := setToWire(evp.May)
			if err != nil {
				return nil, err
			}
			jev := jsonEvent{
				Kind: int(ev.Kind),
				Key:  ev.Key,
				Must: must,
				May:  may,
			}
			// Check ids are dense and small (< NumChecks), so ascending
			// order falls out of a linear scan — no sort needed.
			for id := secmodel.CheckID(0); int(id) < secmodel.NumChecks; id++ {
				if _, ok := evp.Origins[id]; !ok {
					continue
				}
				check, err := checkToWire(id)
				if err != nil {
					return nil, err
				}
				jev.Origins = append(jev.Origins, jsonOrigin{
					Check:   check,
					Methods: evp.OriginsOf(id),
				})
			}
			je.Events = append(je.Events, jev)
		}
		out.Entries = append(out.Entries, je)
	}
	return json.MarshalIndent(out, "", "  ")
}

// ImportJSON reconstructs shared policies. The result is directly usable
// by diff.Compare against locally extracted policies.
func ImportJSON(data []byte) (*ProgramPolicies, error) {
	var in jsonPolicies
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("policy import: %w", err)
	}
	if in.Version != wireVersion {
		return nil, fmt.Errorf("policy import: unsupported version %d", in.Version)
	}
	if in.Library == "" {
		return nil, fmt.Errorf("policy import: missing library name")
	}
	pp := NewProgramPolicies(in.Library)
	for _, je := range in.Entries {
		ep := NewEntryPolicy(je.Entry)
		for _, jev := range je.Events {
			ev := secmodel.Event{Kind: secmodel.EventKind(jev.Kind), Key: jev.Key}
			evp := ep.EventPolicyFor(ev)
			must, err := setFromWire(jev.Must)
			if err != nil {
				return nil, err
			}
			may, err := setFromWire(jev.May)
			if err != nil {
				return nil, err
			}
			evp.Must, evp.May = must, may
			for _, o := range jev.Origins {
				id, err := checkFromWire(o.Check)
				if err != nil {
					return nil, err
				}
				for _, m := range o.Methods {
					evp.AddOrigin(id, m)
				}
			}
		}
		pp.Entries[je.Entry] = ep
	}
	return pp, nil
}
