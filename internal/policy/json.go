package policy

import (
	"encoding/json"
	"fmt"

	"policyoracle/internal/secmodel"
)

// The paper's Discussion section proposes that vendors of proprietary
// implementations share *extracted policies* rather than code, and
// difference against them. This file provides the stable serialization
// for that exchange: ExportJSON writes a ProgramPolicies snapshot;
// ImportJSON reads one back into a ProgramPolicies usable by diff.Compare.

// jsonPolicies is the wire form of ProgramPolicies. Domain is omitted
// for the default (SecurityManager) domain, so default-domain exports
// are byte-identical to the pre-domain wire format and old blobs import
// cleanly.
type jsonPolicies struct {
	Library string      `json:"library"`
	Domain  string      `json:"domain,omitempty"`
	Version int         `json:"version"`
	Entries []jsonEntry `json:"entries"`
}

type jsonEntry struct {
	Entry  string      `json:"entry"`
	Events []jsonEvent `json:"events"`
}

type jsonEvent struct {
	Kind    int          `json:"kind"`
	Key     string       `json:"key,omitempty"`
	Must    []string     `json:"must"`
	May     []string     `json:"may"`
	Origins []jsonOrigin `json:"origins,omitempty"`
}

type jsonOrigin struct {
	Check   string   `json:"check"`
	Methods []string `json:"methods"`
}

const wireVersion = 1

// checkToWire renders a check as name/arity, the stable wire identity
// within domain d. The arity comes straight from the domain's check
// table, and an ID outside the table is a loud error rather than a
// "check/-1" token that checkFromWire would reject only on re-import.
func checkToWire(d *secmodel.Domain, id secmodel.CheckID) (string, error) {
	arity := d.CheckArity(id)
	if arity < 0 {
		return "", fmt.Errorf("policy export: check ID %d is not in domain %s", int(id), d.ID())
	}
	return d.CheckName(id) + "/" + fmt.Sprint(arity), nil
}

func checkFromWire(d *secmodel.Domain, s string) (secmodel.CheckID, error) {
	var name string
	var arity int
	if _, err := fmt.Sscanf(s, "%31s", &name); err != nil {
		return 0, fmt.Errorf("bad check %q", s)
	}
	if i := indexByte(s, '/'); i >= 0 {
		name = s[:i]
		if _, err := fmt.Sscanf(s[i+1:], "%d", &arity); err != nil {
			return 0, fmt.Errorf("bad check arity in %q", s)
		}
	} else {
		return 0, fmt.Errorf("check %q lacks arity", s)
	}
	id, ok := d.CheckByName(name, arity)
	if !ok {
		return 0, fmt.Errorf("unknown check %q in domain %s", s, d.ID())
	}
	return id, nil
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

func setToWire(d *secmodel.Domain, s CheckSet) ([]string, error) {
	out := make([]string, 0, s.Len())
	for _, id := range s.IDs() {
		w, err := checkToWire(d, id)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func setFromWire(d *secmodel.Domain, names []string) (CheckSet, error) {
	var s CheckSet
	for _, n := range names {
		id, err := checkFromWire(d, n)
		if err != nil {
			return 0, err
		}
		s = s.With(id)
	}
	return s, nil
}

// ExportJSON serializes the policies for sharing. The checks are
// rendered against the policies' domain; the domain ID travels on the
// wire (omitted for the default domain, keeping those bytes unchanged).
func (pp *ProgramPolicies) ExportJSON() ([]byte, error) {
	dom, err := pp.DomainModel()
	if err != nil {
		return nil, fmt.Errorf("policy export: %w", err)
	}
	domID := pp.Domain
	if domID == secmodel.DefaultDomainID {
		domID = "" // canonical spelling of the default domain on the wire
	}
	out := jsonPolicies{Library: pp.Library, Domain: domID, Version: wireVersion}
	for _, sig := range pp.SortedEntries() {
		ep := pp.Entries[sig]
		je := jsonEntry{Entry: sig}
		for _, ev := range ep.SortedEvents() {
			evp := ep.Events[ev]
			must, err := setToWire(dom, evp.Must)
			if err != nil {
				return nil, err
			}
			may, err := setToWire(dom, evp.May)
			if err != nil {
				return nil, err
			}
			jev := jsonEvent{
				Kind: int(ev.Kind),
				Key:  ev.Key,
				Must: must,
				May:  may,
			}
			// Check ids are dense and small (< the domain's table size), so
			// ascending order falls out of a linear scan — no sort needed.
			for id := secmodel.CheckID(0); int(id) < dom.NumChecks(); id++ {
				if _, ok := evp.Origins[id]; !ok {
					continue
				}
				check, err := checkToWire(dom, id)
				if err != nil {
					return nil, err
				}
				jev.Origins = append(jev.Origins, jsonOrigin{
					Check:   check,
					Methods: evp.OriginsOf(id),
				})
			}
			je.Events = append(je.Events, jev)
		}
		out.Entries = append(out.Entries, je)
	}
	return json.MarshalIndent(out, "", "  ")
}

// ImportJSON reconstructs shared policies. The result is directly usable
// by diff.Compare against locally extracted policies.
func ImportJSON(data []byte) (*ProgramPolicies, error) {
	var in jsonPolicies
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("policy import: %w", err)
	}
	if in.Version != wireVersion {
		return nil, fmt.Errorf("policy import: unsupported version %d", in.Version)
	}
	if in.Library == "" {
		return nil, fmt.Errorf("policy import: missing library name")
	}
	dom, err := secmodel.ResolveDomain(in.Domain)
	if err != nil {
		return nil, fmt.Errorf("policy import: %w", err)
	}
	pp := NewProgramPolicies(in.Library)
	if dom != secmodel.SecurityManager() {
		pp.Domain = dom.ID()
	}
	for _, je := range in.Entries {
		ep := NewEntryPolicy(je.Entry)
		for _, jev := range je.Events {
			ev := secmodel.Event{Kind: secmodel.EventKind(jev.Kind), Key: jev.Key}
			evp := ep.EventPolicyFor(ev)
			must, err := setFromWire(dom, jev.Must)
			if err != nil {
				return nil, err
			}
			may, err := setFromWire(dom, jev.May)
			if err != nil {
				return nil, err
			}
			evp.Must, evp.May = must, may
			for _, o := range jev.Origins {
				id, err := checkFromWire(dom, o.Check)
				if err != nil {
					return nil, err
				}
				for _, m := range o.Methods {
					evp.AddOrigin(id, m)
				}
			}
		}
		pp.Entries[je.Entry] = ep
	}
	return pp, nil
}
