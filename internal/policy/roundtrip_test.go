package policy_test

import (
	"bytes"
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/diff"
	"policyoracle/internal/oracle"
	"policyoracle/internal/policy"
)

// TestExportRoundTripAllCorpora is the export/import property test on
// real extracted policies — invariant (d) of the metamorphic checker run
// in plain `go test` over every corpus bundle: the three hand-written
// implementations and the three generated ones. Export must be a byte
// fixed point of import, and the imported policies must diff clean
// against the originals in both directions.
func TestExportRoundTripAllCorpora(t *testing.T) {
	bundles := map[string]map[string]string{}
	for _, lib := range corpus.Libraries() {
		bundles[lib] = corpus.Sources(lib)
	}
	for lib, srcs := range gen.Generate(gen.Small()).Sources {
		bundles["gen-"+lib] = srcs
	}
	for name, srcs := range bundles {
		t.Run(name, func(t *testing.T) {
			l, err := oracle.LoadLibrary(name, srcs)
			if err != nil {
				t.Fatal(err)
			}
			l.Extract(oracle.DefaultOptions())
			b1, err := l.Policies.ExportJSON()
			if err != nil {
				t.Fatal(err)
			}
			imported, err := policy.ImportJSON(b1)
			if err != nil {
				t.Fatalf("re-importing export: %v", err)
			}
			b2, err := imported.ExportJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("export not byte-identical after round-trip (%d vs %d bytes)", len(b1), len(b2))
			}
			for _, rep := range []*diff.Report{
				diff.Compare(l.Policies, imported),
				diff.Compare(imported, l.Policies),
			} {
				for _, g := range rep.Groups {
					t.Errorf("imported policies diff against original: %s %s at %v",
						g.Case, g.DiffChecks, g.Entries[:1])
				}
			}
		})
	}
}
