package policy_test

import (
	"bytes"
	"testing"

	"policyoracle/internal/policy"
)

// FuzzExportRoundTrip asserts the wire format's safety and idempotence on
// arbitrary bytes: ImportJSON never panics, anything it accepts can be
// exported, and export ∘ import is a fixed point — re-importing an
// exported document and exporting again reproduces it byte-identically.
// This is invariant (d) of the metamorphic checker, driven from raw JSON
// instead of extracted policies.
func FuzzExportRoundTrip(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"library":"jdk","version":1,"entries":[]}`,
		`{"library":"jdk","version":1,"entries":[{"entry":"java.io.File.delete/0",
		  "events":[{"kind":0,"key":"unlink/1","must":["checkDelete/1"],"may":["checkDelete/1"],
		  "origins":[{"check":"checkDelete/1","methods":["java.io.File.delete/0"]}]}]}]}`,
		`{"library":"a","version":1,"entries":[{"entry":"x/0",
		  "events":[{"kind":2,"key":"p0","must":[],"may":["checkPermission/1","checkRead/2"]}]}]}`,
		`{"library":"v2","version":2,"entries":[]}`,
		`{"library":"dup","version":1,"entries":[{"entry":"e/0","events":[
		  {"kind":1,"key":"f","must":["checkRead/1"],"may":["checkRead/1"]},
		  {"kind":1,"key":"f","must":[],"may":["checkWrite/1"]}]}]}`,
		`{"library":"bad","version":1,"entries":[{"entry":"e/0",
		  "events":[{"kind":0,"key":"n/1","must":["nosuch/9"],"may":[]}]}]}`,
		`[1,2,3]`,
		`{"library":"x","version":1,"entries":[{"entry":"e/0","events":[{"kind":-7,"key":""}]}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pp, err := policy.ImportJSON(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		b1, err := pp.ExportJSON()
		if err != nil {
			t.Fatalf("accepted import cannot export: %v", err)
		}
		pp2, err := policy.ImportJSON(b1)
		if err != nil {
			t.Fatalf("exported document rejected on re-import: %v\n%s", err, b1)
		}
		b2, err := pp2.ExportJSON()
		if err != nil {
			t.Fatalf("re-export failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("export is not a fixed point of import\n--- first ---\n%s\n--- second ---\n%s", b1, b2)
		}
	})
}
