// Package policy defines security-policy values: per-event MAY and MUST
// check sets, the bounded path-policy enrichment displayed in the paper's
// Figure 2, and the rules for combining multiple occurrences of the same
// event (intersection for MUST, union for MAY — Section 5).
package policy

import (
	"fmt"
	"sort"
	"strings"

	"policyoracle/internal/secmodel"
)

// CheckSet is a bitset over a domain's security checks (at most 64; the
// default SecurityManager domain has 31).
type CheckSet uint64

// Empty is the empty check set.
const Empty CheckSet = 0

// Full is the set of all checks of the default (SecurityManager) domain —
// the MUST analysis' initial value ⊤ there. Domain-generic code uses
// CheckSet(d.FullMask()) instead.
var Full = CheckSet((uint64(1) << uint(secmodel.NumChecks)) - 1)

// With returns s with check id added.
func (s CheckSet) With(id secmodel.CheckID) CheckSet { return s | 1<<uint(id) }

// Has reports whether s contains id.
func (s CheckSet) Has(id secmodel.CheckID) bool { return s&(1<<uint(id)) != 0 }

// Union returns s ∪ t.
func (s CheckSet) Union(t CheckSet) CheckSet { return s | t }

// Intersect returns s ∩ t.
func (s CheckSet) Intersect(t CheckSet) CheckSet { return s & t }

// Minus returns s \ t.
func (s CheckSet) Minus(t CheckSet) CheckSet { return s &^ t }

// IsEmpty reports whether s has no checks.
func (s CheckSet) IsEmpty() bool { return s == 0 }

// Len returns the number of checks in s.
func (s CheckSet) Len() int {
	n := 0
	for v := uint64(s); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// IDs returns the check IDs in s in ascending order. The scan covers the
// full 64-bit word so it is correct for every domain's table size.
func (s CheckSet) IDs() []secmodel.CheckID {
	var out []secmodel.CheckID
	for i := 0; i < 64; i++ {
		if s.Has(secmodel.CheckID(i)) {
			out = append(out, secmodel.CheckID(i))
		}
	}
	return out
}

// String renders the set as sorted check names of the default
// (SecurityManager) domain. Domain-aware rendering uses StringIn.
func (s CheckSet) String() string { return secmodel.CheckSetString(uint64(s)) }

// StringIn renders the set as sorted check names of domain d (nil means
// the default domain).
func (s CheckSet) StringIn(d *secmodel.Domain) string {
	if d == nil {
		d = secmodel.SecurityManager()
	}
	return d.CheckSetString(uint64(s))
}

// ---------------------------------------------------------------------------
// Path policies (Figure 2's sets of alternative check conjunctions)

// PathSets is a bounded set of alternative check conjunctions: the checks
// performed along each distinct class of paths to an event. It refines the
// flat MAY set for reporting: {{checkMulticast}, {checkConnect,
// checkAccept}} rather than the union of all three.
type PathSets struct {
	Sets     []CheckSet // sorted, deduplicated
	Overflow bool       // true when the path bound was exceeded
}

// PathCap bounds the number of alternatives tracked per program point.
const PathCap = 8

// PathEmpty is the single-empty-path value (analysis entry state).
func PathEmpty() PathSets { return PathSets{Sets: []CheckSet{Empty}} }

// normalize sorts, dedups, and applies the cap.
func (p PathSets) normalize() PathSets {
	// Alternative lists are tiny (≤ PathCap, ≤ PathCap² transiently in
	// Cross); insertion sort beats sort.Slice here and avoids the
	// interface/Swapper allocations on the solver hot path.
	for i := 1; i < len(p.Sets); i++ {
		for j := i; j > 0 && p.Sets[j] < p.Sets[j-1]; j-- {
			p.Sets[j], p.Sets[j-1] = p.Sets[j-1], p.Sets[j]
		}
	}
	out := p.Sets[:0]
	var prev CheckSet
	for i, s := range p.Sets {
		if i == 0 || s != prev {
			out = append(out, s)
		}
		prev = s
	}
	p.Sets = out
	if len(p.Sets) > PathCap {
		// Collapse to the union when too many alternatives exist.
		var u CheckSet
		for _, s := range p.Sets {
			u = u.Union(s)
		}
		p.Sets = []CheckSet{u}
		p.Overflow = true
	}
	return p
}

// subsetOf reports whether every set in sub appears in sup. Both slices
// must be sorted and deduplicated (the PathSets invariant).
func subsetOf(sub, sup []CheckSet) bool {
	j := 0
	for _, s := range sub {
		for j < len(sup) && sup[j] < s {
			j++
		}
		if j == len(sup) || sup[j] != s {
			return false
		}
		j++
	}
	return true
}

// Join merges the alternatives of two predecessors.
func (p PathSets) Join(q PathSets) PathSets {
	// Fast paths: at the solver fixed point most joins are no-ops. Both
	// operands hold the sorted/deduplicated invariant, so subset checks
	// and the general merge are linear, and a no-op join returns the
	// existing (immutable) value without allocating.
	if q.Overflow == (p.Overflow || q.Overflow) && subsetOf(p.Sets, q.Sets) {
		return q
	}
	if p.Overflow == (p.Overflow || q.Overflow) && subsetOf(q.Sets, p.Sets) {
		return p
	}
	merged := PathSets{
		Sets:     make([]CheckSet, 0, len(p.Sets)+len(q.Sets)),
		Overflow: p.Overflow || q.Overflow,
	}
	i, j := 0, 0
	for i < len(p.Sets) && j < len(q.Sets) {
		switch {
		case p.Sets[i] < q.Sets[j]:
			merged.Sets = append(merged.Sets, p.Sets[i])
			i++
		case p.Sets[i] > q.Sets[j]:
			merged.Sets = append(merged.Sets, q.Sets[j])
			j++
		default:
			merged.Sets = append(merged.Sets, p.Sets[i])
			i, j = i+1, j+1
		}
	}
	merged.Sets = append(merged.Sets, p.Sets[i:]...)
	merged.Sets = append(merged.Sets, q.Sets[j:]...)
	if len(merged.Sets) > PathCap {
		var u CheckSet
		for _, s := range merged.Sets {
			u = u.Union(s)
		}
		merged.Sets = merged.Sets[:1]
		merged.Sets[0] = u
		merged.Overflow = true
	}
	return merged
}

// AddCheck adds a check to every alternative.
func (p PathSets) AddCheck(id secmodel.CheckID) PathSets {
	return p.AddAll(Empty.With(id))
}

// AddAll unions cs into every alternative (used for callee effects).
func (p PathSets) AddAll(cs CheckSet) PathSets {
	all := true
	for _, s := range p.Sets {
		if s.Union(cs) != s {
			all = false
			break
		}
	}
	if all {
		// Every alternative already contains cs (always true for cs ==
		// Empty); the result is p itself, which is immutable by
		// convention, so return it without copying.
		return p
	}
	out := PathSets{Sets: make([]CheckSet, len(p.Sets)), Overflow: p.Overflow}
	for i, s := range p.Sets {
		out.Sets[i] = s.Union(cs)
	}
	return out.normalize()
}

// Cross combines caller alternatives with callee alternatives
// (every caller path continues into every callee path).
func (p PathSets) Cross(q PathSets) PathSets {
	out := PathSets{Overflow: p.Overflow || q.Overflow}
	for _, a := range p.Sets {
		for _, b := range q.Sets {
			out.Sets = append(out.Sets, a.Union(b))
		}
	}
	return out.normalize()
}

// Equal reports set equality.
func (p PathSets) Equal(q PathSets) bool {
	if len(p.Sets) != len(q.Sets) || p.Overflow != q.Overflow {
		return false
	}
	for i := range p.Sets {
		if p.Sets[i] != q.Sets[i] {
			return false
		}
	}
	return true
}

// Union returns the flat union of all alternatives.
func (p PathSets) Union() CheckSet {
	var u CheckSet
	for _, s := range p.Sets {
		u = u.Union(s)
	}
	return u
}

// String renders the alternatives as {{...}, {...}}.
func (p PathSets) String() string {
	parts := make([]string, len(p.Sets))
	for i, s := range p.Sets {
		parts[i] = s.String()
	}
	suffix := ""
	if p.Overflow {
		suffix = "…"
	}
	return "{" + strings.Join(parts, ", ") + suffix + "}"
}

// StringIn renders the path alternatives with check names resolved in
// domain d (nil means the default domain, matching String).
func (p PathSets) StringIn(d *secmodel.Domain) string {
	parts := make([]string, len(p.Sets))
	for i, s := range p.Sets {
		parts[i] = s.StringIn(d)
	}
	suffix := ""
	if p.Overflow {
		suffix = "…"
	}
	return "{" + strings.Join(parts, ", ") + suffix + "}"
}

// Key renders a canonical string usable as a memoization key component.
func (p PathSets) Key() string {
	var sb strings.Builder
	for _, s := range p.Sets {
		fmt.Fprintf(&sb, "%x,", uint64(s))
	}
	if p.Overflow {
		sb.WriteByte('!')
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Event and entry-point policies

// EventPolicy is the policy computed for one security-sensitive event of
// one API entry point: which checks must and may precede it, the refined
// path alternatives, and where each contributing check occurs (for
// root-cause grouping).
type EventPolicy struct {
	Event secmodel.Event
	Must  CheckSet
	May   CheckSet
	Paths PathSets
	// Origins maps each check in May to the qualified signatures of the
	// methods whose bodies invoke it on some path to this event.
	Origins map[secmodel.CheckID]map[string]bool

	combined bool
}

// NewEventPolicy returns an empty policy for ev.
func NewEventPolicy(ev secmodel.Event) *EventPolicy {
	return &EventPolicy{
		Event:   ev,
		Must:    Full,
		Paths:   PathSets{},
		Origins: make(map[secmodel.CheckID]map[string]bool),
	}
}

// AddOccurrence combines one occurrence of the event into the policy:
// MUST sets intersect, MAY sets union (Section 5).
func (ep *EventPolicy) AddOccurrence(must, may CheckSet, paths PathSets) {
	ep.Must = ep.Must.Intersect(must)
	ep.May = ep.May.Union(may)
	if !ep.combined {
		ep.Paths = paths
		ep.combined = true
	} else {
		ep.Paths = ep.Paths.Join(paths)
	}
}

// AddOrigin records that check id is invoked in method sig on some path to
// this event.
func (ep *EventPolicy) AddOrigin(id secmodel.CheckID, sig string) {
	m := ep.Origins[id]
	if m == nil {
		m = make(map[string]bool)
		ep.Origins[id] = m
	}
	m[sig] = true
}

// OriginsOf returns the sorted origin method signatures for a check.
func (ep *EventPolicy) OriginsOf(id secmodel.CheckID) []string {
	var out []string
	for sig := range ep.Origins[id] {
		out = append(out, sig)
	}
	sort.Strings(out)
	return out
}

// HasChecks reports whether any check may precede the event.
func (ep *EventPolicy) HasChecks() bool { return !ep.May.IsEmpty() }

// String renders the policy in the style of Figure 2.
func (ep *EventPolicy) String() string {
	return fmt.Sprintf("MUST %s MAY %s Event: %s", ep.Must, ep.May, ep.Event)
}

// EntryPolicy aggregates the event policies of one API entry point.
type EntryPolicy struct {
	Entry  string // qualified signature
	Events map[secmodel.Event]*EventPolicy
	// Guards maps each check to the distinct guard-condition position
	// lists under which its occurrences execute; the empty string means an
	// unconditional occurrence exists. Populated only when extraction runs
	// with guard collection (Section 6.4's MAY-policy conditions).
	Guards map[secmodel.CheckID]map[string]bool
}

// NewEntryPolicy returns an empty entry policy.
func NewEntryPolicy(entry string) *EntryPolicy {
	return &EntryPolicy{Entry: entry, Events: make(map[secmodel.Event]*EventPolicy)}
}

// AddGuard records one occurrence's guard-condition positions for a check.
func (p *EntryPolicy) AddGuard(id secmodel.CheckID, guards string) {
	if p.Guards == nil {
		p.Guards = make(map[secmodel.CheckID]map[string]bool)
	}
	m := p.Guards[id]
	if m == nil {
		m = make(map[string]bool)
		p.Guards[id] = m
	}
	m[guards] = true
}

// GuardsOf returns the sorted distinct guard-position lists for a check.
func (p *EntryPolicy) GuardsOf(id secmodel.CheckID) []string {
	var out []string
	for g := range p.Guards[id] {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// EventPolicyFor returns (creating if needed) the policy for ev.
func (p *EntryPolicy) EventPolicyFor(ev secmodel.Event) *EventPolicy {
	ep := p.Events[ev]
	if ep == nil {
		ep = NewEventPolicy(ev)
		p.Events[ev] = ep
	}
	return ep
}

// HasChecks reports whether any event of this entry point has checks.
func (p *EntryPolicy) HasChecks() bool {
	for _, ep := range p.Events {
		if ep.HasChecks() {
			return true
		}
	}
	return false
}

// SortedEvents returns the events in deterministic order.
func (p *EntryPolicy) SortedEvents() []secmodel.Event {
	out := make([]secmodel.Event, 0, len(p.Events))
	for ev := range p.Events {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// NumPolicies counts the (must, may) policies of this entry point: one
// must and one may policy per event, matching how Table 1 counts policies.
func (p *EntryPolicy) NumPolicies() int { return len(p.Events) }

// ProgramPolicies maps entry-point signatures to their policies for one
// library implementation.
type ProgramPolicies struct {
	Library string
	// Domain is the ID of the check domain the policies were extracted
	// under. The empty string means the default (SecurityManager) domain,
	// which is what keeps pre-domain exports readable and default-domain
	// export bytes unchanged.
	Domain  string
	Entries map[string]*EntryPolicy
}

// DomainModel resolves the check domain the policies belong to.
func (pp *ProgramPolicies) DomainModel() (*secmodel.Domain, error) {
	d, ok := secmodel.DomainByID(pp.Domain)
	if !ok {
		return nil, fmt.Errorf("%w %q", secmodel.ErrUnknownDomain, pp.Domain)
	}
	return d, nil
}

// NewProgramPolicies returns an empty policy table.
func NewProgramPolicies(lib string) *ProgramPolicies {
	return &ProgramPolicies{Library: lib, Entries: make(map[string]*EntryPolicy)}
}

// SortedEntries returns entry signatures in sorted order.
func (pp *ProgramPolicies) SortedEntries() []string {
	out := make([]string, 0, len(pp.Entries))
	for k := range pp.Entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CountPolicies returns the total number of event policies (per analysis
// mode; Table 1 reports may and must counts separately but they are equal
// per event).
func (pp *ProgramPolicies) CountPolicies() int {
	n := 0
	for _, e := range pp.Entries {
		n += e.NumPolicies()
	}
	return n
}

// EntriesWithChecks counts entry points whose policies include at least
// one check (Table 1's "entry points w/ security checks").
func (pp *ProgramPolicies) EntriesWithChecks() int {
	n := 0
	for _, e := range pp.Entries {
		if e.HasChecks() {
			n++
		}
	}
	return n
}
