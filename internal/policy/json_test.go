package policy

import (
	"strings"
	"testing"

	"policyoracle/internal/secmodel"
)

func samplePolicies(t *testing.T) *ProgramPolicies {
	t.Helper()
	read, _ := secmodel.CheckByName("checkRead", 1)
	conn2, _ := secmodel.CheckByName("checkConnect", 2)
	conn3, _ := secmodel.CheckByName("checkConnect", 3)
	pp := NewProgramPolicies("vendor")
	ep := NewEntryPolicy("api.F.m(String)")
	ret := ep.EventPolicyFor(secmodel.ReturnEvent())
	ret.Must = Empty.With(read)
	ret.May = Empty.With(read).With(conn2).With(conn3)
	ret.AddOrigin(read, "api.F.helper()")
	ret.AddOrigin(conn2, "api.F.m(String)")
	nat := ep.EventPolicyFor(secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/1"})
	nat.Must = Empty
	nat.May = Empty.With(read)
	pp.Entries[ep.Entry] = ep
	pp.Entries["api.F.plain()"] = NewEntryPolicy("api.F.plain()")
	return pp
}

func TestExportImportRoundtrip(t *testing.T) {
	pp := samplePolicies(t)
	data, err := pp.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ImportJSON(data)
	if err != nil {
		t.Fatalf("import: %v\n%s", err, data)
	}
	if got.Library != "vendor" || len(got.Entries) != len(pp.Entries) {
		t.Fatalf("imported = %+v", got)
	}
	for sig, ep := range pp.Entries {
		gep := got.Entries[sig]
		if gep == nil {
			t.Fatalf("entry %s missing", sig)
		}
		for ev, evp := range ep.Events {
			gevp := gep.Events[ev]
			if gevp == nil {
				t.Fatalf("%s: event %s missing", sig, ev)
			}
			if gevp.Must != evp.Must || gevp.May != evp.May {
				t.Errorf("%s/%s: must/may differ: %s/%s vs %s/%s",
					sig, ev, gevp.Must, gevp.May, evp.Must, evp.May)
			}
		}
	}
	// Origins survive: the root-cause grouping of diff reports depends on
	// them even for imported policies.
	read, _ := secmodel.CheckByName("checkRead", 1)
	gep := got.Entries["api.F.m(String)"]
	origins := gep.Events[secmodel.ReturnEvent()].OriginsOf(read)
	if len(origins) != 1 || origins[0] != "api.F.helper()" {
		t.Errorf("origins = %v", origins)
	}
}

func TestImportRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"bad version":     `{"library":"x","version":99,"entries":[]}`,
		"missing library": `{"version":1,"entries":[]}`,
		"unknown check": `{"library":"x","version":1,"entries":[
			{"entry":"A.f()","events":[{"kind":1,"must":["checkBogus/1"],"may":[]}]}]}`,
		"missing arity": `{"library":"x","version":1,"entries":[
			{"entry":"A.f()","events":[{"kind":1,"must":["checkRead"],"may":[]}]}]}`,
	}
	for name, src := range cases {
		if _, err := ImportJSON([]byte(src)); err == nil {
			t.Errorf("%s: import succeeded", name)
		}
	}
}

func TestWireDistinguishesOverloads(t *testing.T) {
	conn2, _ := secmodel.CheckByName("checkConnect", 2)
	conn3, _ := secmodel.CheckByName("checkConnect", 3)
	w2, err2 := checkToWire(secmodel.SecurityManager(), conn2)
	w3, err3 := checkToWire(secmodel.SecurityManager(), conn3)
	if err2 != nil || err3 != nil {
		t.Fatalf("checkToWire errors: %v, %v", err2, err3)
	}
	if w2 == w3 {
		t.Fatalf("overloads collide on the wire: %q", w2)
	}
	if !strings.HasPrefix(w2, "checkConnect/") {
		t.Errorf("wire form = %q", w2)
	}
	r2, err := checkFromWire(secmodel.SecurityManager(), w2)
	if err != nil || r2 != conn2 {
		t.Errorf("roundtrip = %v, %v", r2, err)
	}
	r3, err := checkFromWire(secmodel.SecurityManager(), w3)
	if err != nil || r3 != conn3 {
		t.Errorf("roundtrip = %v, %v", r3, err)
	}
}

// TestWireRoundTripAllChecks exports and re-imports every registered
// check: the wire arity comes from the secmodel table, so no check may
// serialize to a form the importer rejects.
func TestWireRoundTripAllChecks(t *testing.T) {
	for id := secmodel.CheckID(0); id < secmodel.NumChecks; id++ {
		w, err := checkToWire(secmodel.SecurityManager(), id)
		if err != nil {
			t.Fatalf("check %s (id %d): export: %v", secmodel.CheckName(id), id, err)
		}
		got, err := checkFromWire(secmodel.SecurityManager(), w)
		if err != nil {
			t.Fatalf("check %s (wire %q): import: %v", secmodel.CheckName(id), w, err)
		}
		if got != id {
			t.Errorf("check %s: round-trip = id %d, want %d", w, got, id)
		}
	}
}

// TestWireRejectsUnknownCheckID: an ID outside the security model must
// fail at export time, not silently emit "name/-1" for re-import to trip
// over.
func TestWireRejectsUnknownCheckID(t *testing.T) {
	for _, id := range []secmodel.CheckID{-1, secmodel.NumChecks, 999} {
		if w, err := checkToWire(secmodel.SecurityManager(), id); err == nil {
			t.Errorf("checkToWire(secmodel.SecurityManager(), %d) = %q, want error", id, w)
		}
	}
}
