// Package policyoracle is a security policy oracle: it detects security
// holes in an API by comparing multiple, independent implementations of
// that API, reproducing Srivastava, Bond, McKinley, and Shmatikov,
// "A Security Policy Oracle: Detecting Security Holes Using Multiple API
// Implementations" (PLDI 2011).
//
// A security policy in the access-rights model maps security-sensitive
// events — native (JNI) calls and API returns, optionally private-field
// and parameter accesses — to the security checks (SecurityManager.check*)
// that precede them. All implementations of one API must enforce the same
// policy, so any difference between the policies extracted from two
// implementations is at least an interoperability bug and possibly a
// security hole; the oracle needs no manual policy and no mined patterns.
//
// Libraries are written in MJ, a Java subset (see the examples directory
// and internal/parser). The pipeline is:
//
//	srcs := map[string]string{"Socket.mj": "package java.net; ..."}
//	a, err := policyoracle.LoadLibrary("jdk", srcs)
//	b, err := policyoracle.LoadLibrary("harmony", srcs2)
//	report, err := policyoracle.Compare(a, b, policyoracle.DefaultOptions())
//	fmt.Print(report)
//
// Compare extracts each library's policies if they are missing and then
// differences them. Callers that manage extraction themselves use
// Library.Extract (or ExtractContext for cancellation) followed by Diff,
// which fails loudly when either side was never extracted.
//
// Extraction runs the paper's flow- and context-sensitive interprocedural
// analysis (SPDA/ISPA) twice per entry point — a MAY pass (union meet) and
// a MUST pass (intersection meet) — with interprocedural constant
// propagation and memoized method summaries. Diff applies the paper's
// Section 5 comparison cases and groups manifestations by root cause.
package policyoracle

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"policyoracle/internal/analysis"
	"policyoracle/internal/corpus"
	"policyoracle/internal/diff"
	"policyoracle/internal/oracle"
	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
)

// Library is one loaded API implementation with its extracted policies.
type Library = oracle.Library

// Options configures policy extraction.
type Options = oracle.Options

// Report is the outcome of differencing two implementations.
type Report = diff.Report

// Group is one distinct difference (root cause) with its manifestations.
type Group = diff.Group

// Difference is one policy difference at one API entry point.
type Difference = diff.Difference

// EntryPolicy aggregates the event policies of one API entry point.
type EntryPolicy = policy.EntryPolicy

// EventPolicy is the MAY/MUST policy of one security-sensitive event.
type EventPolicy = policy.EventPolicy

// CheckSet is a set of security checks.
type CheckSet = policy.CheckSet

// CheckID is the dense identifier of one check within its domain.
type CheckID = secmodel.CheckID

// Event identifies a security-sensitive event.
type Event = secmodel.Event

// Domain is a first-class check domain: the guard class, check table,
// event definitions, and privileged-block semantics one extraction runs
// under. The SecurityManager model of the paper is the registered
// default; additional domains (e.g. the bundled crypto-API misuse
// domain) plug in via RegisterDomain. Domains are immutable after
// construction and safe for concurrent use.
type Domain = secmodel.Domain

// CheckDesc describes one security check of a domain: its method name
// and parameter count.
type CheckDesc = secmodel.CheckDesc

// DomainSpec is the construction-time description NewDomain validates
// into a Domain.
type DomainSpec = secmodel.DomainSpec

// Check-domain IDs of the two bundled domains.
const (
	// DefaultDomainID is the SecurityManager domain of the paper —
	// what every Options with a nil Domain extracts under.
	DefaultDomainID = secmodel.DefaultDomainID
	// CryptoDomainID is the bundled crypto-API misuse domain: IV
	// freshness, cipher mode, key size, and RNG seeding checks guarding
	// cipher-call events.
	CryptoDomainID = secmodel.CryptoDomainID
)

// EventMode values for Options.Events.
const (
	// NarrowEvents observes native calls and API returns (the paper's
	// main configuration).
	NarrowEvents = secmodel.NarrowEvents
	// BroadEvents adds private-field and parameter accesses (Section 3).
	BroadEvents = secmodel.BroadEvents
)

// ErrUnknownDomain reports a domain ID that is not registered; resolve
// IDs with ResolveDomain.
var ErrUnknownDomain = secmodel.ErrUnknownDomain

// NewDomain validates a DomainSpec into an immutable Domain. The domain
// is usable immediately; register it to make it addressable by ID.
func NewDomain(spec DomainSpec) (*Domain, error) { return secmodel.NewDomain(spec) }

// RegisterDomain adds a domain to the process-wide registry, making it
// addressable by ID in options, wire formats, and the polorad API. A
// duplicate ID is an error.
func RegisterDomain(d *Domain) error { return secmodel.RegisterDomain(d) }

// DomainByID looks up a registered domain; the empty ID resolves to the
// default (SecurityManager) domain.
func DomainByID(id string) (*Domain, bool) { return secmodel.DomainByID(id) }

// ResolveDomain is DomainByID with a typed error: unknown IDs wrap
// ErrUnknownDomain and name the registered domains.
func ResolveDomain(id string) (*Domain, error) { return secmodel.ResolveDomain(id) }

// Domains lists the IDs of every registered domain, sorted.
func Domains() []string { return secmodel.Domains() }

// Event kinds, re-exported for matching report events.
const (
	NativeCall   = secmodel.NativeCall
	APIReturn    = secmodel.APIReturn
	PrivateRead  = secmodel.PrivateRead
	PrivateWrite = secmodel.PrivateWrite
	ParamAccess  = secmodel.ParamAccess
)

// Comparison cases (Section 5).
const (
	CaseMissingPolicy   = diff.CaseMissingPolicy
	CaseCheckMismatch   = diff.CaseCheckMismatch
	CaseMustMayMismatch = diff.CaseMustMayMismatch
)

// Memoization modes (Table 2's swept parameter).
const (
	MemoGlobal   = analysis.MemoGlobal
	MemoPerEntry = analysis.MemoPerEntry
	MemoNone     = analysis.MemoNone
)

// DefaultOptions returns the configuration used for the paper's main
// results: narrow events, interprocedural constant propagation, global
// summaries, Figure 2-style path policies.
func DefaultOptions() Options { return oracle.DefaultOptions() }

// LoadLibrary parses and builds one implementation from named MJ sources.
func LoadLibrary(name string, sources map[string]string) (*Library, error) {
	return oracle.LoadLibrary(name, sources)
}

// LoadLibraryDir loads every .mj file under dir as one implementation.
func LoadLibraryDir(name, dir string) (*Library, error) {
	sources, err := ReadSourcesDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", name, err)
	}
	return oracle.LoadLibrary(name, sources)
}

// ReadSourcesDir reads every .mj file under dir into a source map keyed
// by slash-separated path relative to dir — the same map LoadLibraryDir
// loads and Fingerprint addresses, so a directory fingerprints
// identically however it reaches the oracle.
func ReadSourcesDir(dir string) (map[string]string, error) {
	sources := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".mj") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			rel = path
		}
		sources[filepath.ToSlash(rel)] = string(data)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", dir, err)
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("no .mj files under %s", dir)
	}
	return sources, nil
}

// Fingerprint returns the content address of a library bundle — the
// stable hash of its name, sources, and semantic extraction options that
// the polorad policy store keys on.
func Fingerprint(name string, sources map[string]string, opts Options) string {
	return oracle.Fingerprint(name, sources, opts)
}

// ErrNotExtracted reports a Diff over a library whose policies were
// never extracted.
var ErrNotExtracted = oracle.ErrNotExtracted

// ErrNoPrevious reports an incremental extraction seeded from a library
// that carries no extracted policies.
var ErrNoPrevious = oracle.ErrNoPrevious

// ErrDomainMismatch reports a Diff whose two policy sets were extracted
// under different check domains.
var ErrDomainMismatch = oracle.ErrDomainMismatch

// IncrementalStats describes how much work one incremental extraction
// reused versus redid.
type IncrementalStats = oracle.IncrementalStats

// Snapshot is the persisted form of one extraction — exported policies
// plus the incremental state (method hashes, per-entry dependency sets,
// option key) that a later ExtractIncremental seeds from. Libraries
// produce snapshots with ExportSnapshot.
type Snapshot = oracle.Snapshot

// ExtractIncremental reloads sources and extracts their policies,
// splicing from prev every entry point whose dependency set is untouched
// by the changed methods. The result is byte-identical (wire format and
// diff reports) to a from-scratch Extract of the same sources under the
// same options; when prev was extracted under different options the call
// transparently falls back to a full extraction (IncrementalStats.Full).
func ExtractIncremental(prev *Library, sources map[string]string, opts Options) (*Library, *IncrementalStats, error) {
	return oracle.ExtractIncremental(prev, sources, opts)
}

// ImportSnapshot decodes a snapshot (see Library.ExportSnapshot) into
// the previous-extraction view ExtractIncremental seeds from.
func ImportSnapshot(data []byte) (*Library, error) {
	return oracle.ImportSnapshot(data)
}

// Diff differences the extracted policies of two implementations. Both
// must have been Extracted first: differencing an un-extracted library
// returns an error wrapping ErrNotExtracted rather than a silently
// empty report.
func Diff(a, b *Library) (*Report, error) { return oracle.Diff(a, b) }

// Compare is the one-shot entry point: it extracts either library's
// policies under opts if they are missing, then differences them. A
// library that already has policies is never re-extracted.
func Compare(a, b *Library, opts Options) (*Report, error) {
	return oracle.Compare(a, b, opts)
}

// MatchingEntries counts entry-point signatures common to both libraries.
func MatchingEntries(a, b *Library) int { return oracle.MatchingEntries(a, b) }

// BuiltinCorpus returns the bundled MJ implementation named "jdk",
// "harmony", or "classpath" — the hand-written corpus reproducing every
// figure of the paper. It returns nil for unknown names.
func BuiltinCorpus(name string) map[string]string { return corpus.Sources(name) }

// BuiltinCorpora lists the bundled implementation names.
func BuiltinCorpora() []string { return corpus.Libraries() }
