package policyoracle_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"policyoracle"
)

func TestBuiltinCorporaRoundtrip(t *testing.T) {
	names := policyoracle.BuiltinCorpora()
	if len(names) != 3 {
		t.Fatalf("corpora = %v", names)
	}
	for _, n := range names {
		srcs := policyoracle.BuiltinCorpus(n)
		if len(srcs) == 0 {
			t.Errorf("corpus %s empty", n)
		}
	}
	if policyoracle.BuiltinCorpus("nope") != nil {
		t.Error("unknown corpus should be nil")
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	opts := policyoracle.DefaultOptions()
	jdk, err := policyoracle.LoadLibrary("jdk", policyoracle.BuiltinCorpus("jdk"))
	if err != nil {
		t.Fatal(err)
	}
	harmony, err := policyoracle.LoadLibrary("harmony", policyoracle.BuiltinCorpus("harmony"))
	if err != nil {
		t.Fatal(err)
	}
	jdk.Extract(opts)
	harmony.Extract(opts)

	rep, err := policyoracle.Diff(jdk, harmony)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MatchingEntries == 0 || len(rep.Groups) == 0 {
		t.Fatalf("degenerate report: %s", rep)
	}
	// The Figure 1 vulnerability must be visible through the public API.
	found := false
	for _, g := range rep.Groups {
		if g.MissingIn == "harmony" && strings.Contains(g.DiffChecks.String(), "checkAccept") {
			found = true
			if g.Case != policyoracle.CaseCheckMismatch {
				t.Errorf("case = %v", g.Case)
			}
		}
	}
	if !found {
		t.Error("Figure 1 difference not reported via public API")
	}
}

func TestLoadLibraryDir(t *testing.T) {
	dir := t.TempDir()
	for file, src := range policyoracle.BuiltinCorpus("classpath") {
		path := filepath.Join(dir, filepath.FromSlash(file))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	lib, err := policyoracle.LoadLibraryDir("classpath", dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.EntryPoints()) == 0 {
		t.Error("no entry points loaded from directory")
	}

	if _, err := policyoracle.LoadLibraryDir("empty", t.TempDir()); err == nil {
		t.Error("expected error for directory without .mj files")
	}
}

func TestEventConstruction(t *testing.T) {
	ev := policyoracle.Event{Kind: policyoracle.NativeCall, Key: "connect0/2"}
	if ev.String() != "native:connect0/2" {
		t.Errorf("event = %q", ev)
	}
}
