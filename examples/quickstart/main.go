// Quickstart: difference two tiny implementations of the same API, one of
// which forgets a permission check, and print the oracle's report.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"policyoracle"
)

// Both implementations expose FileApi.delete(String). The "vendor-b"
// implementation forgets the checkDelete permission check, so untrusted
// code could delete files.
const runtime = `
package java.lang;
public class Object { }
public class String { }
public class SecurityManager {
  public void checkDelete(String file) { }
}
`

const vendorA = `
package api.io;
import java.lang.*;
public class FileApi {
  private SecurityManager securityManager;
  public void delete(String path) {
    securityManager.checkDelete(path);
    unlink0(path);
  }
  native void unlink0(String path);
}
`

const vendorB = `
package api.io;
import java.lang.*;
public class FileApi {
  private SecurityManager securityManager;
  public void delete(String path) {
    unlink0(path);
  }
  native void unlink0(String path);
}
`

func main() {
	a, err := policyoracle.LoadLibrary("vendor-a", map[string]string{
		"runtime.mj": runtime, "fileapi.mj": vendorA,
	})
	if err != nil {
		log.Fatal(err)
	}
	b, err := policyoracle.LoadLibrary("vendor-b", map[string]string{
		"runtime.mj": runtime, "fileapi.mj": vendorB,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Compare extracts both libraries' policies and differences them in
	// one call.
	rep, err := policyoracle.Compare(a, b, policyoracle.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s vs %s: %d matching entry points, %d distinct difference(s)\n\n",
		rep.LibA, rep.LibB, rep.MatchingEntries, len(rep.Groups))
	for _, g := range rep.Groups {
		fmt.Printf("difference [%s]: checks %s missing in %s\n", g.Case, g.DiffChecks, g.MissingIn)
		for _, e := range g.Entries {
			fmt.Printf("  manifests at %s\n", e)
		}
		d := g.Diffs[0]
		fmt.Printf("  %-10s MUST %s MAY %s (event %s)\n", d.A.Library, d.A.Must, d.A.May, d.Event)
		fmt.Printf("  %-10s MUST %s MAY %s\n", d.B.Library, d.B.Must, d.B.May)
	}
}
