// Figure 5 and Section 6.2 reproduction: the JDK's Runtime.loadLibrary
// misses the checkRead that Classpath performs before loading a native
// library (an interprocedural bug: the checks and the native load live in
// different methods), and the JDK's privileged-block property check is a
// semantic no-op that the analysis correctly ignores.
//
// Run with: go run ./examples/loadlibrary
package main

import (
	"fmt"
	"log"
	"strings"

	"policyoracle"
)

func main() {
	opts := policyoracle.DefaultOptions()
	libs := map[string]*policyoracle.Library{}
	for _, name := range []string{"jdk", "classpath"} {
		lib, err := policyoracle.LoadLibrary(name, policyoracle.BuiltinCorpus(name))
		if err != nil {
			log.Fatal(err)
		}
		lib.Extract(opts)
		libs[name] = lib
	}

	const entry = "java.lang.Runtime.loadLibrary(String)"
	fmt.Println("Runtime.loadLibrary policies (API-return event):")
	for _, name := range []string{"jdk", "classpath"} {
		ep := libs[name].Policies.Entries[entry]
		if ep == nil {
			log.Fatalf("%s: %s not found", name, entry)
		}
		ret := ep.Events[policyoracle.Event{Kind: policyoracle.APIReturn}]
		fmt.Printf("  %-10s MUST %s\n", name, ret.Must)
	}
	fmt.Println()

	fmt.Println("PropsAccess.getProperty policies (the JDK check hides inside doPrivileged):")
	for _, name := range []string{"jdk", "classpath"} {
		ep := libs[name].Policies.Entries["java.lang.PropsAccess.getProperty(String)"]
		ret := ep.Events[policyoracle.Event{Kind: policyoracle.APIReturn}]
		fmt.Printf("  %-10s MUST %s\n", name, ret.Must)
	}
	fmt.Println()

	rep, err := policyoracle.Diff(libs["jdk"], libs["classpath"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- oracle report (loadLibrary and getProperty) ---")
	for _, g := range rep.Groups {
		for _, e := range g.Entries {
			if strings.Contains(e, "loadLibrary") || strings.Contains(e, "getProperty") {
				fmt.Printf("[%s/%s] checks %s missing in %s — %s\n",
					g.Case, g.Category, g.DiffChecks, g.MissingIn, e)
			}
		}
	}
}
