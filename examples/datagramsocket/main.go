// Figure 1/2 reproduction: extract the security policies of
// DatagramSocket.connect from the bundled JDK and Harmony corpora, print
// them in the style of the paper's Figure 2, and show the oracle detecting
// Harmony's missing checkAccept.
//
// The JDK policy is unique in the whole library — checkMulticast on one
// branch, checkConnect AND checkAccept on the other — which is exactly the
// kind of rare pattern that code-mining misses and manual policies omit.
//
// Run with: go run ./examples/datagramsocket
package main

import (
	"fmt"
	"log"
	"strings"

	"policyoracle"
)

func main() {
	opts := policyoracle.DefaultOptions()
	libs := map[string]*policyoracle.Library{}
	for _, name := range []string{"jdk", "harmony"} {
		lib, err := policyoracle.LoadLibrary(name, policyoracle.BuiltinCorpus(name))
		if err != nil {
			log.Fatal(err)
		}
		lib.Extract(opts)
		libs[name] = lib
	}

	const entry = "java.net.DatagramSocket.connect(InetAddress,int)"
	for _, name := range []string{"jdk", "harmony"} {
		ep := libs[name].Policies.Entries[entry]
		if ep == nil {
			log.Fatalf("%s: entry %s not found", name, entry)
		}
		fmt.Printf("(%s) DatagramSocket.connect security policies\n", name)
		for _, ev := range ep.SortedEvents() {
			evp := ep.Events[ev]
			fmt.Printf("  MUST check: %s\n  Event: API %s\n", evp.Must, ev)
			fmt.Printf("  MAY check: %s\n  Event: API %s\n", pathsOrFlat(evp), ev)
		}
		fmt.Println()
	}

	rep, err := policyoracle.Diff(libs["jdk"], libs["harmony"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- oracle report ---")
	for _, g := range rep.Groups {
		for _, e := range g.Entries {
			if strings.Contains(e, "DatagramSocket") {
				fmt.Printf("[%s] checks %s missing in %s — manifests at %s\n",
					g.Case, g.DiffChecks, g.MissingIn, e)
			}
		}
	}
}

// pathsOrFlat prints Figure 2's set-of-alternatives form when available.
func pathsOrFlat(evp *policyoracle.EventPolicy) string {
	if len(evp.Paths.Sets) > 1 {
		return evp.Paths.String()
	}
	return evp.May.String()
}
