// Oracle vs code-mining (Section 2): Harmony's DatagramSocket.connect
// misses a checkAccept that occurs in a pattern appearing exactly once in
// the library. A frequent-pattern miner cannot see it — the pattern is
// below any support threshold — while cross-implementation differencing
// reports it immediately.
//
// Run with: go run ./examples/mining
package main

import (
	"fmt"
	"log"
	"strings"

	"policyoracle"
	"policyoracle/internal/baseline/mining"
)

func main() {
	opts := policyoracle.DefaultOptions()
	libs := map[string]*policyoracle.Library{}
	for _, name := range []string{"jdk", "harmony"} {
		lib, err := policyoracle.LoadLibrary(name, policyoracle.BuiltinCorpus(name))
		if err != nil {
			log.Fatal(err)
		}
		lib.Extract(opts)
		libs[name] = lib
	}

	fmt.Println("=== code-mining baseline on harmony alone ===")
	for _, cfg := range []mining.Config{
		{MinSupport: 5, MinConfidence: 0.95},
		{MinSupport: 3, MinConfidence: 0.9},
		{MinSupport: 2, MinConfidence: 0.6},
	} {
		m := mining.New(libs["harmony"].Policies, cfg)
		vs := m.FindViolations()
		fmt.Printf("support>=%d confidence>=%.2f: %d violation(s)\n",
			cfg.MinSupport, cfg.MinConfidence, len(vs))
		foundBug := false
		for _, v := range vs {
			fmt.Printf("  %s\n", v)
			if strings.Contains(v.Entry, "DatagramSocket.connect") &&
				strings.Contains(v.Rule.String(), "checkAccept") {
				foundBug = true
			}
		}
		if !foundBug {
			fmt.Println("  -> the rare-pattern checkAccept bug is NOT among them")
		}
	}

	fmt.Println("\n=== security policy oracle (jdk vs harmony) ===")
	rep, err := policyoracle.Diff(libs["jdk"], libs["harmony"])
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range rep.Groups {
		if strings.Contains(g.DiffChecks.String(), "checkAccept") {
			fmt.Printf("[%s] checks %s missing in %s — manifests at %s\n",
				g.Case, g.DiffChecks, g.MissingIn, strings.Join(g.Entries, ", "))
		}
	}
}
