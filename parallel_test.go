// Parallel-extraction determinism: the worker-pool extraction of
// oracle.Extract must produce byte-identical diff reports to the
// sequential path on the shipped corpora, in every event mode, because
// memoized summaries are pure functions of their memo key (the recursion
// cutoff is never cached — see internal/analysis) and per-entry results
// are merged in sorted entry order regardless of scheduling.
//
// Run under `go test -race` this doubles as the race-coverage test for
// the shared summary cache, the CP cache, and the resolver statistics.
package policyoracle_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"policyoracle"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
)

// diffReportJSON extracts two builtin corpora with the given worker count
// and renders the diff report as indented JSON. With instrument set, the
// extraction runs with a live metrics registry — telemetry must never
// change the report bytes.
func diffReportJSON(t *testing.T, libA, libB string, parallel int, events secmodel.EventMode, instrument bool) []byte {
	t.Helper()
	load := func(name string) *policyoracle.Library {
		lib, err := policyoracle.LoadLibrary(name, policyoracle.BuiltinCorpus(name))
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		return lib
	}
	opts := policyoracle.DefaultOptions()
	opts.Parallel = parallel
	opts.Events = events
	if instrument {
		opts.Telemetry = telemetry.NewExtractMetrics(telemetry.New())
	}
	a, b := load(libA), load(libB)
	a.Extract(opts)
	b.Extract(opts)
	rep, err := policyoracle.Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(rep.ToJSON(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestParallelExtractionByteIdentical(t *testing.T) {
	pairs := [][2]string{{"jdk", "harmony"}, {"harmony", "classpath"}, {"jdk", "classpath"}}
	for _, events := range []secmodel.EventMode{secmodel.NarrowEvents, secmodel.BroadEvents} {
		for _, pair := range pairs {
			t.Run(fmt.Sprintf("%s-%s-%s", pair[0], pair[1], events), func(t *testing.T) {
				seq := diffReportJSON(t, pair[0], pair[1], 1, events, false)
				if len(seq) == 0 {
					t.Fatal("empty sequential report")
				}
				for _, parallel := range []int{4, 8} {
					// Instrument the parallel runs: byte identity must
					// hold with telemetry enabled, per-worker.
					got := diffReportJSON(t, pair[0], pair[1], parallel, events, true)
					if !bytes.Equal(seq, got) {
						t.Errorf("-parallel %d report differs from sequential:\nsequential:\n%s\nparallel:\n%s",
							parallel, seq, got)
					}
				}
			})
		}
	}
}

// TestParallelExtractionMemoModes covers the per-entry and no-memo
// configurations, whose caches must be private to each entry analysis
// when entries run concurrently.
func TestParallelExtractionMemoModes(t *testing.T) {
	modes := []struct {
		name string
		memo func(*policyoracle.Options)
	}{
		{"per-entry", func(o *policyoracle.Options) { o.Memo = policyoracle.MemoPerEntry }},
		{"none", func(o *policyoracle.Options) { o.Memo = policyoracle.MemoNone }},
	}
	for _, mm := range modes {
		t.Run(mm.name, func(t *testing.T) {
			report := func(parallel int) []byte {
				lib, err := policyoracle.LoadLibrary("jdk", policyoracle.BuiltinCorpus("jdk"))
				if err != nil {
					t.Fatal(err)
				}
				other, err := policyoracle.LoadLibrary("harmony", policyoracle.BuiltinCorpus("harmony"))
				if err != nil {
					t.Fatal(err)
				}
				opts := policyoracle.DefaultOptions()
				opts.Parallel = parallel
				mm.memo(&opts)
				lib.Extract(opts)
				other.Extract(opts)
				rep, err := policyoracle.Diff(lib, other)
				if err != nil {
					t.Fatal(err)
				}
				data, err := json.MarshalIndent(rep.ToJSON(), "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				return data
			}
			if seq, par := report(1), report(4); !bytes.Equal(seq, par) {
				t.Errorf("memo %s: parallel report differs from sequential", mm.name)
			}
		})
	}
}
