// Ablation benchmarks for the design choices the analysis makes
// (DESIGN.md): interprocedural constant propagation, Figure 2 path-policy
// collection, the security-manager null-guard assumption, and the
// exception-semantics extension. Each isolates one knob against the
// default configuration of BenchmarkTable1Extraction.
package policyoracle_test

import (
	"testing"

	"policyoracle/internal/exceptions"
	"policyoracle/internal/oracle"
)

func BenchmarkAblationICPOff(b *testing.B) {
	w := benchWorkload(b)
	opts := oracle.DefaultOptions()
	opts.ICP = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := loadLib(b, w, "jdk")
		l.Extract(opts)
	}
}

func BenchmarkAblationNoPathPolicies(b *testing.B) {
	w := benchWorkload(b)
	opts := oracle.DefaultOptions()
	opts.CollectPaths = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := loadLib(b, w, "jdk")
		l.Extract(opts)
	}
}

func BenchmarkAblationNoSecurityManagerAssumption(b *testing.B) {
	w := benchWorkload(b)
	opts := oracle.DefaultOptions()
	opts.AssumeSecurityManager = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := loadLib(b, w, "jdk")
		l.Extract(opts)
	}
}

func BenchmarkAblationMaxDepthIntraprocedural(b *testing.B) {
	w := benchWorkload(b)
	opts := oracle.DefaultOptions()
	opts.MaxDepth = 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := loadLib(b, w, "jdk")
		l.Extract(opts)
	}
}

// BenchmarkExceptionSemantics measures the Section 8 extension: the
// whole-program thrown-exception fixed point plus comparison.
func BenchmarkExceptionSemantics(b *testing.B) {
	w := benchWorkload(b)
	jdk := loadLib(b, w, "jdk")
	harmony := loadLib(b, w, "harmony")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a1 := exceptions.New(jdk.Prog, jdk.Resolver)
		a2 := exceptions.New(harmony.Prog, harmony.Resolver)
		exceptions.Compare(a1, a2)
	}
}
