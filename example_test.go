package policyoracle_test

import (
	"fmt"
	"log"

	"policyoracle"
)

// Example demonstrates the oracle end to end on two inline
// implementations of one API, one of which misses a permission check.
func Example() {
	runtime := `
package java.lang;
public class Object { }
public class String { }
public class SecurityManager {
  public void checkWrite(String file) { }
}
`
	vendorA := `
package api;
import java.lang.*;
public class Log {
  private SecurityManager sm;
  public void append(String line) {
    sm.checkWrite(line);
    write0(line);
  }
  native void write0(String line);
}
`
	vendorB := `
package api;
import java.lang.*;
public class Log {
  public void append(String line) {
    write0(line);
  }
  native void write0(String line);
}
`
	a, err := policyoracle.LoadLibrary("vendor-a", map[string]string{"rt.mj": runtime, "log.mj": vendorA})
	if err != nil {
		log.Fatal(err)
	}
	b, err := policyoracle.LoadLibrary("vendor-b", map[string]string{"rt.mj": runtime, "log.mj": vendorB})
	if err != nil {
		log.Fatal(err)
	}
	opts := policyoracle.DefaultOptions()
	a.Extract(opts)
	b.Extract(opts)

	rep, err := policyoracle.Diff(a, b)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range rep.Groups {
		fmt.Printf("%s: %s missing in %s at %s\n", g.Case, g.DiffChecks, g.MissingIn, g.Entries[0])
	}
	// Output:
	// missing-policy: {checkWrite} missing in vendor-b at api.Log.append(String)
}
